//! # bismo-opt
//!
//! First-order optimizers for the BiSMO workspace (reproduction of
//! *"Efficient Bilevel Source Mask Optimization"*, DAC 2024). Algorithm 2 of
//! the paper updates both parameter blocks with plain gradient descent "or
//! Adam"; both are provided here behind the [`Optimizer`] trait, plus
//! classical momentum for ablations.
//!
//! ## Examples
//!
//! ```
//! use bismo_opt::{Adam, Optimizer};
//!
//! // Minimize f(x) = x² from x = 3.
//! let mut x = vec![3.0_f64];
//! let mut opt = Adam::new(0.1, 1);
//! for _ in 0..400 {
//!     let grad = vec![2.0 * x[0]];
//!     opt.step(&mut x, &grad);
//! }
//! assert!(x[0].abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A first-order optimizer updating a flat parameter vector in place.
///
/// Implementations carry their own state (momentum buffers, step counters)
/// keyed to a fixed parameter length declared at construction.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len()` or `grad.len()` differs from
    /// the length the optimizer was built for.
    fn step(&mut self, params: &mut [f64], grad: &[f64]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (used by schedules and ablations).
    fn set_learning_rate(&mut self, lr: f64);

    /// Clears momentum/adaptive state (used when a driver re-initializes
    /// parameters, e.g. AM-SMO phase switches reset state while
    /// Algorithm 2's `θ_J⁰ ← θ_J^T` weight-sharing re-init keeps it).
    fn reset(&mut self);
}

/// Plain gradient descent: `θ ← θ − lr·∇`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    len: usize,
}

impl Sgd {
    /// Creates a descent rule with step size `lr` for vectors of length
    /// `len`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64, len: usize) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd { lr, len }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), self.len, "parameter length changed");
        assert_eq!(grad.len(), self.len, "gradient length mismatch");
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn reset(&mut self) {}
}

/// Classical (heavy-ball) momentum: `v ← μv + ∇; θ ← θ − lr·v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f64,
    mu: f64,
    velocity: Vec<f64>,
}

impl Momentum {
    /// Creates a momentum rule with step size `lr` and decay `mu` for
    /// vectors of length `len`.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 ≤ mu < 1`.
    pub fn new(lr: f64, mu: f64, len: usize) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must lie in [0, 1)");
        Momentum {
            lr,
            mu,
            velocity: vec![0.0; len],
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "parameter length changed"
        );
        assert_eq!(grad.len(), self.velocity.len(), "gradient length mismatch");
        for ((p, g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            *v = self.mu * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer the ILT
/// literature (and the paper's Algorithm 2 comment) actually runs.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64, len: usize) -> Self {
        Adam::with_betas(lr, 0.9, 0.999, 1e-8, len)
    }

    /// Creates Adam with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`, `0 ≤ β < 1` for both betas and `eps > 0`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64, len: usize) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must lie in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must lie in [0, 1)");
        assert!(eps > 0.0, "eps must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter length changed");
        assert_eq!(grad.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, &g), (m, v)) in params
            .iter_mut()
            .zip(grad)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.iter_mut().for_each(|v| *v = 0.0);
        self.v.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Which optimizer a driver should instantiate; carried in experiment
/// configurations so runs are fully described by plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain gradient descent.
    Sgd,
    /// Heavy-ball momentum with the given decay.
    Momentum(f64),
    /// Adam with default betas.
    Adam,
}

impl OptimizerKind {
    /// Momentum decay selected when the family is chosen by name (the
    /// classical heavy-ball default).
    pub const DEFAULT_MOMENTUM: f64 = 0.9;

    /// Instantiates the optimizer for a parameter vector of length `len`.
    pub fn build(self, lr: f64, len: usize) -> Box<dyn Optimizer + Send> {
        match self {
            OptimizerKind::Sgd => Box::new(Sgd::new(lr, len)),
            OptimizerKind::Momentum(mu) => Box::new(Momentum::new(lr, mu, len)),
            OptimizerKind::Adam => Box::new(Adam::new(lr, len)),
        }
    }

    /// Stable lowercase name of the family, round-tripping through
    /// [`OptimizerKind::from_name`] (the momentum decay is not encoded; by
    /// name the family comes back with [`OptimizerKind::DEFAULT_MOMENTUM`]).
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgd => "sgd",
            OptimizerKind::Momentum(_) => "momentum",
            OptimizerKind::Adam => "adam",
        }
    }

    /// Parses an optimizer family by name, case-insensitively — the same
    /// fail-fast contract as `Scale::parse` in the bench harness: a typo is
    /// an error naming the offending value and the valid ones, never a
    /// silent fallback.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn from_name(raw: &str) -> Result<OptimizerKind, String> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "sgd" => Ok(OptimizerKind::Sgd),
            "momentum" => Ok(OptimizerKind::Momentum(Self::DEFAULT_MOMENTUM)),
            "adam" => Ok(OptimizerKind::Adam),
            other => Err(format!(
                "unrecognized optimizer name {other:?}; valid values are \
                 \"sgd\", \"momentum\", \"adam\" (case-insensitive)"
            )),
        }
    }
}

impl std::str::FromStr for OptimizerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OptimizerKind::from_name(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_grad(x: &[f64], a: &[f64], c: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(a)
            .zip(c)
            .map(|((xi, ai), ci)| 2.0 * ci * (xi - ai))
            .collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let a = [1.0, -2.0, 0.5];
        let c = [1.0, 0.5, 2.0];
        let mut x = vec![0.0; 3];
        let mut opt = Sgd::new(0.1, 3);
        for _ in 0..300 {
            let g = quad_grad(&x, &a, &c);
            opt.step(&mut x, &g);
        }
        for (xi, ai) in x.iter().zip(&a) {
            assert!((xi - ai).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_beats_sgd_on_ill_conditioned() {
        let a = [3.0, -1.0];
        let c = [10.0, 0.1]; // condition number 100
        let run = |mut opt: Box<dyn Optimizer>, iters: usize| -> f64 {
            let mut x = vec![0.0; 2];
            for _ in 0..iters {
                let g = quad_grad(&x, &a, &c);
                opt.step(&mut x, &g);
            }
            x.iter().zip(&a).map(|(xi, ai)| (xi - ai) * (xi - ai)).sum()
        };
        let sgd_err = run(Box::new(Sgd::new(0.04, 2)), 200);
        let mom_err = run(Box::new(Momentum::new(0.04, 0.9, 2)), 200);
        assert!(mom_err < sgd_err, "momentum {mom_err} vs sgd {sgd_err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let a = [1.0, -2.0, 0.5, 4.0];
        let c = [5.0, 0.1, 1.0, 0.01];
        let mut x = vec![0.0; 4];
        let mut opt = Adam::new(0.2, 4);
        for _ in 0..2000 {
            let g = quad_grad(&x, &a, &c);
            opt.step(&mut x, &g);
        }
        for (xi, ai) in x.iter().zip(&a) {
            assert!((xi - ai).abs() < 1e-3, "{xi} vs {ai}");
        }
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // Bias correction makes the very first Adam step ≈ lr·sign(g).
        let mut x = vec![0.0];
        let mut opt = Adam::new(0.5, 1);
        opt.step(&mut x, &[1e-4]);
        assert!((x[0] + 0.5).abs() < 1e-2, "step was {}", x[0]);
    }

    #[test]
    fn reset_restores_fresh_behavior() {
        let mut a = Adam::new(0.1, 2);
        let mut warmup = vec![0.0, 0.0];
        a.step(&mut warmup, &[1.0, -1.0]);
        a.reset();
        let mut b = Adam::new(0.1, 2);
        let mut x1 = vec![0.0, 0.0];
        let mut x2 = vec![0.0, 0.0];
        a.step(&mut x1, &[1.0, -1.0]);
        b.step(&mut x2, &[1.0, -1.0]);
        assert_eq!(x1, x2);
    }

    #[test]
    fn kind_builds_matching_variants() {
        let mut x = vec![1.0];
        OptimizerKind::Sgd.build(0.5, 1).step(&mut x, &[1.0]);
        assert!((x[0] - 0.5).abs() < 1e-12);
        let mut y = vec![1.0];
        OptimizerKind::Momentum(0.9)
            .build(0.5, 1)
            .step(&mut y, &[1.0]);
        assert!((y[0] - 0.5).abs() < 1e-12);
        let mut z = vec![1.0];
        OptimizerKind::Adam.build(0.5, 1).step(&mut z, &[1.0]);
        assert!(z[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn bad_learning_rate_panics() {
        let _ = Sgd::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_gradient_panics() {
        let mut opt = Sgd::new(0.1, 2);
        let mut x = vec![0.0, 0.0];
        opt.step(&mut x, &[1.0]);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            OptimizerKind::Sgd,
            OptimizerKind::Momentum(OptimizerKind::DEFAULT_MOMENTUM),
            OptimizerKind::Adam,
        ] {
            assert_eq!(OptimizerKind::from_name(kind.name()), Ok(kind));
            // FromStr mirrors from_name (enables `"adam".parse()`).
            assert_eq!(kind.name().parse::<OptimizerKind>(), Ok(kind));
        }
        // Case-insensitive, whitespace-tolerant.
        assert_eq!(OptimizerKind::from_name(" ADAM "), Ok(OptimizerKind::Adam));
        assert_eq!(
            OptimizerKind::from_name("Momentum"),
            Ok(OptimizerKind::Momentum(0.9))
        );
        // Typos fail fast with the valid values listed.
        let err = OptimizerKind::from_name("adamw").unwrap_err();
        assert!(err.contains("adamw") && err.contains("momentum"), "{err}");
    }

    #[test]
    fn learning_rate_roundtrip() {
        let mut opt = Momentum::new(0.1, 0.5, 1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
