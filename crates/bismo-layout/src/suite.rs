//! Synthetic benchmark suites reproducing the statistics of paper Table 2.
//!
//! The paper evaluates on the ICCAD-2013 contest metal clips, the larger
//! ICCAD-L set, and ISPD-2019 metal+via clips. Those layout files are not
//! redistributable here (data gate — DESIGN.md §3), so this module generates
//! seeded Manhattan layouts that match each suite's published knobs: average
//! pattern area, clip count, layer mix and critical dimension. The
//! optimizers only ever see the rasterized target `Z_t`, so matching these
//! statistics reproduces the suites' relative difficulty ordering.

use bismo_optics::{OpticalConfig, RealField};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which suite a generated set mimics: the paper's published rows
/// (Table 2), or one of the procedural families used to exercise the
/// optimizers at arbitrary scale (multigrid benchmarking — DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// ICCAD-2013 contest: 10 metal clips, CD 32 nm, avg area ≈ 0.2 µm².
    Iccad13,
    /// ICCAD-L: 10 larger metal clips, CD 32 nm, avg area ≈ 0.48 µm².
    IccadL,
    /// ISPD-2019: 100 metal+via clips, CD 28 nm, avg area ≈ 0.7 µm².
    Ispd19,
    /// Procedural Manhattan random logic: dense mixed wires, jogs and a
    /// sprinkling of vias — a standard-cell routing texture.
    RandomLogic,
    /// Procedural line-space gratings with a few isolated features — the
    /// isolated lines are the classically hard-to-print part and what SMO
    /// source shaping is for.
    LineSpace,
    /// Procedural contact/via arrays with random dropout.
    ContactArray,
}

impl SuiteKind {
    /// Display name matching the paper's tables (procedural kinds use their
    /// own stable labels).
    pub fn name(&self) -> &'static str {
        match self {
            SuiteKind::Iccad13 => "ICCAD13",
            SuiteKind::IccadL => "ICCAD-L",
            SuiteKind::Ispd19 => "ISPD19",
            SuiteKind::RandomLogic => "RAND-LOGIC",
            SuiteKind::LineSpace => "LINE-SPACE",
            SuiteKind::ContactArray => "CONTACT",
        }
    }

    /// Inverse of [`SuiteKind::name`], used when reloading journaled
    /// benchmark records. Covers both the paper and the procedural kinds.
    pub fn from_name(name: &str) -> Option<SuiteKind> {
        SuiteKind::all()
            .into_iter()
            .chain(SuiteKind::procedural())
            .find(|k| k.name() == name)
    }

    /// Clip count of the published suite (Table 2 "Test num."); procedural
    /// suites default to 8 (callers pass any count they want).
    pub fn test_count(&self) -> usize {
        match self {
            SuiteKind::Iccad13 | SuiteKind::IccadL => 10,
            SuiteKind::Ispd19 => 100,
            SuiteKind::RandomLogic | SuiteKind::LineSpace | SuiteKind::ContactArray => 8,
        }
    }

    /// Critical dimension in nm (Table 2 for the paper kinds).
    pub fn cd_nm(&self) -> f64 {
        match self {
            SuiteKind::Iccad13 | SuiteKind::IccadL => 32.0,
            SuiteKind::Ispd19 | SuiteKind::ContactArray => 28.0,
            SuiteKind::RandomLogic | SuiteKind::LineSpace => 32.0,
        }
    }

    /// Layer mix.
    pub fn layer(&self) -> &'static str {
        match self {
            SuiteKind::Iccad13 | SuiteKind::IccadL | SuiteKind::LineSpace => "Metal",
            SuiteKind::Ispd19 | SuiteKind::RandomLogic => "Metal+Via",
            SuiteKind::ContactArray => "Via",
        }
    }

    /// Target average pattern area per clip in nm² (Table 2 for the paper
    /// kinds; nominal for the density-driven procedural generator, unused
    /// by the structured ones).
    pub fn target_area_nm2(&self) -> f64 {
        match self {
            SuiteKind::Iccad13 => 202_655.0,
            SuiteKind::IccadL => 475_571.0,
            SuiteKind::Ispd19 => 698_743.0,
            SuiteKind::RandomLogic => 400_000.0,
            SuiteKind::LineSpace => 900_000.0,
            SuiteKind::ContactArray => 300_000.0,
        }
    }

    /// Deterministic base seed so every harness regenerates identical clips.
    pub fn seed(&self) -> u64 {
        match self {
            SuiteKind::Iccad13 => 13,
            SuiteKind::IccadL => 17,
            SuiteKind::Ispd19 => 19,
            SuiteKind::RandomLogic => 23,
            SuiteKind::LineSpace => 29,
            SuiteKind::ContactArray => 31,
        }
    }

    /// Whether this is one of the procedural families (per-clip derived
    /// seeds, arbitrary count) rather than a published Table 2 row.
    pub fn is_procedural(&self) -> bool {
        matches!(
            self,
            SuiteKind::RandomLogic | SuiteKind::LineSpace | SuiteKind::ContactArray
        )
    }

    /// The paper's three suites in table order. Deliberately excludes the
    /// procedural kinds so Table 3/4 sweeps don't silently widen.
    pub fn all() -> [SuiteKind; 3] {
        [SuiteKind::Iccad13, SuiteKind::IccadL, SuiteKind::Ispd19]
    }

    /// The procedural families, in a stable order.
    pub fn procedural() -> [SuiteKind; 3] {
        [
            SuiteKind::RandomLogic,
            SuiteKind::LineSpace,
            SuiteKind::ContactArray,
        ]
    }
}

/// One benchmark clip: a rasterized binary target pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Suite-local identifier (e.g. `ICCAD13/test3`).
    pub name: String,
    /// Binary target `Z_t` on the mask grid.
    pub target: RealField,
    /// Pattern area in nm².
    pub area_nm2: f64,
}

impl Clip {
    /// A deterministic single-rectangle clip; handy for tests and the
    /// quickstart example.
    pub fn simple_rect(cfg: &OpticalConfig) -> Clip {
        let n = cfg.mask_dim();
        let target = RealField::from_fn(n, |r, c| {
            if (3 * n / 8..5 * n / 8).contains(&r) && (n / 3..2 * n / 3).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let area = target.sum() * cfg.pixel_nm() * cfg.pixel_nm();
        Clip {
            name: "simple_rect".into(),
            target,
            area_nm2: area,
        }
    }

    /// The clip's target downsampled by `factor` through block means — the
    /// coarse-level target of a multigrid schedule (DESIGN.md §11).
    ///
    /// Block means preserve the physical pattern area exactly (the pixel
    /// sum shrinks by `factor²` while the pixel area grows by the same),
    /// so `area_nm2` carries over unchanged; edge pixels become fractional
    /// coverage values in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is nonzero and divides the target dimension.
    #[must_use]
    pub fn downsample(&self, factor: usize) -> Clip {
        Clip {
            name: self.name.clone(),
            target: self.target.block_mean(factor),
            area_nm2: self.area_nm2,
        }
    }
}

/// A generated benchmark suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    kind: SuiteKind,
    clips: Vec<Clip>,
    pixel_nm: f64,
}

impl Suite {
    /// Generates `count` clips of `kind` on `cfg`'s mask grid from the
    /// suite's deterministic seed. Pass `kind.test_count()` to mirror the
    /// published size, or a smaller count for quick runs.
    ///
    /// Paper kinds stream one RNG across the suite (their full clip lists
    /// are pinned by golden data). Procedural kinds derive an independent
    /// seed per clip index, so clip `i` is identical no matter how many
    /// clips the run requests — a 4-clip smoke and an 8-clip bench agree on
    /// their shared prefix.
    pub fn generate(kind: SuiteKind, cfg: &OpticalConfig, count: usize) -> Suite {
        let mut stream = StdRng::seed_from_u64(kind.seed());
        let clips = (0..count)
            .map(|i| {
                if kind.is_procedural() {
                    let mut rng = StdRng::seed_from_u64(
                        kind.seed() ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    generate_clip(kind, cfg, i, &mut rng)
                } else {
                    generate_clip(kind, cfg, i, &mut stream)
                }
            })
            .collect();
        Suite {
            kind,
            clips,
            pixel_nm: cfg.pixel_nm(),
        }
    }

    /// The suite kind.
    pub fn kind(&self) -> SuiteKind {
        self.kind
    }

    /// Generated clips.
    pub fn clips(&self) -> &[Clip] {
        &self.clips
    }

    /// Average pattern area over the generated clips in nm².
    pub fn average_area_nm2(&self) -> f64 {
        if self.clips.is_empty() {
            return 0.0;
        }
        self.clips.iter().map(|c| c.area_nm2).sum::<f64>() / self.clips.len() as f64
    }
}

/// Draws one clip, dispatching on the suite family: the paper kinds (and
/// `RandomLogic`) are density-driven Manhattan fills; the structured
/// procedural kinds draw their geometry directly.
fn generate_clip(kind: SuiteKind, cfg: &OpticalConfig, index: usize, rng: &mut StdRng) -> Clip {
    let pixel = cfg.pixel_nm();
    let cd_px = (kind.cd_nm() / pixel).round().max(1.0) as usize;
    let field = match kind {
        SuiteKind::LineSpace => generate_line_space(cfg, cd_px, rng),
        SuiteKind::ContactArray => generate_contact_array(cfg, cd_px, rng),
        _ => generate_manhattan(kind, cfg, cd_px, rng),
    };
    let area = field.sum() * pixel * pixel;
    Clip {
        name: format!("{}/test{}", kind.name(), index + 1),
        target: field,
        area_nm2: area,
    }
}

/// Manhattan wires (and vias, per the kind's layer mix) until the target
/// density is met, inside a guard band that keeps features imageable.
fn generate_manhattan(
    kind: SuiteKind,
    cfg: &OpticalConfig,
    cd_px: usize,
    rng: &mut StdRng,
) -> RealField {
    let n = cfg.mask_dim();
    let pixel = cfg.pixel_nm();
    let tile_nm = cfg.tile_nm();
    // The published suites put their pattern inside a 4 µm² window; scale
    // the target area by our tile's share of that window so density (and
    // thus difficulty) is preserved on smaller grids.
    let area_scale = (tile_nm * tile_nm) / 4.0e6;
    let target_area = kind.target_area_nm2() * area_scale;
    let via_prob = match kind {
        SuiteKind::Ispd19 => 0.35,
        SuiteKind::RandomLogic => 0.2,
        _ => 0.0,
    };

    let guard = n / 8;
    let lo = guard;
    let hi = n - guard;

    let mut field = RealField::zeros(n);
    let mut area = 0.0;
    let max_shapes = 400;
    let mut shapes = 0;
    while area < target_area && shapes < max_shapes {
        shapes += 1;
        let is_via = via_prob > 0.0 && rng.gen_bool(via_prob);
        if is_via {
            // Vias: squares of ~1.5×CD.
            let side = (cd_px * 3).div_ceil(2);
            let r0 = rng.gen_range(lo..hi.saturating_sub(side));
            let c0 = rng.gen_range(lo..hi.saturating_sub(side));
            fill_rect(&mut field, r0, r0 + side, c0, c0 + side);
        } else {
            // Wires: CD-wide bars with length 4–16 CD, alternating
            // orientation to mimic routing layers. Cap the length by the
            // remaining area budget so small grids don't overshoot the
            // suite's target density.
            let remaining_px = ((target_area - area) / (pixel * pixel)).max(0.0) as usize;
            let budget_len = (remaining_px / cd_px).max(2 * cd_px);
            let len_px = (cd_px * rng.gen_range(4..=16)).min(budget_len);
            let horizontal = rng.gen_bool(0.5);
            if horizontal {
                let r0 = rng.gen_range(lo..hi.saturating_sub(cd_px));
                let c0 = rng.gen_range(lo..hi.saturating_sub(len_px.min(hi - lo - 1)));
                let c1 = (c0 + len_px).min(hi);
                fill_rect(&mut field, r0, r0 + cd_px, c0, c1);
                // Occasionally grow an L-jog, characteristic of metal clips.
                if rng.gen_bool(0.4) {
                    let jog = cd_px * rng.gen_range(2..=6);
                    let r1 = (r0 + cd_px + jog).min(hi);
                    let cj = c1.saturating_sub(cd_px).max(c0);
                    fill_rect(&mut field, r0, r1, cj, cj + cd_px.min(hi - cj));
                }
            } else {
                let c0 = rng.gen_range(lo..hi.saturating_sub(cd_px));
                let r0 = rng.gen_range(lo..hi.saturating_sub(len_px.min(hi - lo - 1)));
                let r1 = (r0 + len_px).min(hi);
                fill_rect(&mut field, r0, r1, c0, c0 + cd_px);
                if rng.gen_bool(0.4) {
                    let jog = cd_px * rng.gen_range(2..=6);
                    let c1 = (c0 + cd_px + jog).min(hi);
                    let rj = r1.saturating_sub(cd_px).max(r0);
                    fill_rect(&mut field, rj, rj + cd_px.min(hi - rj), c0, c1);
                }
            }
        }
        area = field.sum() * pixel * pixel;
    }
    field
}

/// A line-space grating filling the upper part of the interior, plus a few
/// isolated short bars in the cleared lower region. The grating's duty
/// cycle is 1:1 or 1:2; the isolated features sit at least two pitches from
/// the grating so they image without optical support from neighbors.
fn generate_line_space(cfg: &OpticalConfig, cd_px: usize, rng: &mut StdRng) -> RealField {
    let n = cfg.mask_dim();
    let guard = n / 8;
    let lo = guard;
    let hi = n - guard;
    let pitch = cd_px * rng.gen_range(2..=3);
    let horizontal = rng.gen_bool(0.5);

    let mut field = RealField::zeros(n);
    // Grating band: ~3/5 of the interior.
    let band_end = lo + (hi - lo) * 3 / 5;
    let mut start = lo;
    while start + cd_px <= band_end {
        if horizontal {
            fill_rect(&mut field, start, start + cd_px, lo, hi);
        } else {
            fill_rect(&mut field, lo, hi, start, start + cd_px);
        }
        start += pitch;
    }
    // Isolated features in the cleared region beyond two pitches.
    let iso_lo = (band_end + 2 * pitch).min(hi);
    if iso_lo + cd_px < hi {
        for _ in 0..rng.gen_range(1..=3) {
            let len = (cd_px * rng.gen_range(4..=8)).min(hi - lo);
            let along = rng.gen_range(lo..hi.saturating_sub(len).max(lo + 1));
            let across = rng.gen_range(iso_lo..hi - cd_px);
            if horizontal {
                fill_rect(&mut field, across, across + cd_px, along, along + len);
            } else {
                fill_rect(&mut field, along, along + len, across, across + cd_px);
            }
        }
    }
    field
}

/// A regular contact/via array over the interior with random dropout —
/// missing contacts are what makes the array aperiodic and the neighbors of
/// a hole harder to print.
fn generate_contact_array(cfg: &OpticalConfig, cd_px: usize, rng: &mut StdRng) -> RealField {
    let n = cfg.mask_dim();
    let guard = n / 8;
    let lo = guard;
    let hi = n - guard;
    // Contacts of ~1.5 CD on a pitch of contact + 2–3 CD of space.
    let side = (cd_px * 3).div_ceil(2);
    let pitch = side + cd_px * rng.gen_range(2..=3);

    let mut field = RealField::zeros(n);
    let mut r = lo;
    while r + side <= hi {
        let mut c = lo;
        while c + side <= hi {
            if rng.gen_bool(0.85) {
                fill_rect(&mut field, r, r + side, c, c + side);
            }
            c += pitch;
        }
        r += pitch;
    }
    field
}

fn fill_rect(field: &mut RealField, r0: usize, r1: usize, c0: usize, c1: usize) {
    let n = field.dim();
    for r in r0..r1.min(n) {
        for c in c0..c1.min(n) {
            field[(r, c)] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OpticalConfig {
        OpticalConfig::test_small()
    }

    #[test]
    fn kinds_report_table2_facts() {
        assert_eq!(SuiteKind::Iccad13.test_count(), 10);
        assert_eq!(SuiteKind::Ispd19.test_count(), 100);
        assert_eq!(SuiteKind::IccadL.cd_nm(), 32.0);
        assert_eq!(SuiteKind::Ispd19.cd_nm(), 28.0);
        assert_eq!(SuiteKind::Ispd19.layer(), "Metal+Via");
    }

    #[test]
    fn from_name_round_trips() {
        for kind in SuiteKind::all() {
            assert_eq!(SuiteKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SuiteKind::from_name("nope"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Suite::generate(SuiteKind::Iccad13, &cfg(), 3);
        let b = Suite::generate(SuiteKind::Iccad13, &cfg(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn suites_differ_by_seed() {
        let a = Suite::generate(SuiteKind::Iccad13, &cfg(), 2);
        let b = Suite::generate(SuiteKind::IccadL, &cfg(), 2);
        assert_ne!(a.clips()[0].target, b.clips()[0].target);
    }

    #[test]
    fn targets_are_binary_with_guard_band() {
        let s = Suite::generate(SuiteKind::Ispd19, &cfg(), 4);
        let n = cfg().mask_dim();
        for clip in s.clips() {
            for r in 0..n {
                for c in 0..n {
                    let v = clip.target[(r, c)];
                    assert!(v == 0.0 || v == 1.0);
                    if r < n / 8 || r >= n - n / 8 || c < n / 8 || c >= n - n / 8 {
                        assert_eq!(v, 0.0, "feature leaked into guard band at ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn average_area_tracks_suite_ordering() {
        // Density ordering ICCAD13 < ICCAD-L < ISPD19 must survive scaling.
        let c = cfg();
        let a = Suite::generate(SuiteKind::Iccad13, &c, 6).average_area_nm2();
        let b = Suite::generate(SuiteKind::IccadL, &c, 6).average_area_nm2();
        let d = Suite::generate(SuiteKind::Ispd19, &c, 6).average_area_nm2();
        assert!(a < b && b < d, "areas: {a} {b} {d}");
    }

    #[test]
    fn average_area_is_near_scaled_target() {
        let c = cfg();
        let scale = (c.tile_nm() * c.tile_nm()) / 4.0e6;
        for kind in SuiteKind::all() {
            let s = Suite::generate(kind, &c, 8);
            let got = s.average_area_nm2();
            let want = kind.target_area_nm2() * scale;
            assert!(
                got > 0.75 * want && got < 1.6 * want,
                "{}: got {got:.0} want ≈{want:.0}",
                kind.name()
            );
        }
    }

    #[test]
    fn clip_names_are_sequential() {
        let s = Suite::generate(SuiteKind::Iccad13, &cfg(), 3);
        assert_eq!(s.clips()[0].name, "ICCAD13/test1");
        assert_eq!(s.clips()[2].name, "ICCAD13/test3");
    }

    #[test]
    fn procedural_names_round_trip_and_stay_out_of_all() {
        for kind in SuiteKind::procedural() {
            assert!(kind.is_procedural());
            assert_eq!(SuiteKind::from_name(kind.name()), Some(kind));
            assert!(
                !SuiteKind::all().contains(&kind),
                "procedural kinds must not widen the paper sweep"
            );
        }
        assert!(!SuiteKind::Iccad13.is_procedural());
    }

    #[test]
    fn procedural_clips_are_prefix_stable() {
        // Per-clip derived seeds: a 2-clip smoke run and a 5-clip bench run
        // agree on their shared prefix (paper kinds stream one RNG and
        // deliberately don't promise this).
        let c = cfg();
        for kind in SuiteKind::procedural() {
            let small = Suite::generate(kind, &c, 2);
            let large = Suite::generate(kind, &c, 5);
            assert_eq!(small.clips(), &large.clips()[..2], "{}", kind.name());
        }
    }

    #[test]
    fn procedural_targets_are_binary_with_guard_band_and_nonempty() {
        let c = cfg();
        let n = c.mask_dim();
        for kind in SuiteKind::procedural() {
            let s = Suite::generate(kind, &c, 3);
            for clip in s.clips() {
                assert!(
                    clip.area_nm2 > 0.0,
                    "{} produced an empty clip",
                    kind.name()
                );
                for r in 0..n {
                    for col in 0..n {
                        let v = clip.target[(r, col)];
                        assert!(v == 0.0 || v == 1.0);
                        if r < n / 8 || r >= n - n / 8 || col < n / 8 || col >= n - n / 8 {
                            assert_eq!(v, 0.0, "{}: guard band leak", clip.name);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn line_space_has_isolated_features_away_from_the_grating() {
        // The cleared gap between grating and isolated features is the
        // point of the suite; verify some clip has both populations.
        let c = cfg();
        let s = Suite::generate(SuiteKind::LineSpace, &c, 4);
        assert!(s.clips().iter().any(|clip| {
            let n = clip.target.dim();
            let lo = n / 8;
            let hi = n - n / 8;
            let band_end = lo + (hi - lo) * 3 / 5;
            let mut grating = 0.0;
            let mut isolated = 0.0;
            for r in 0..n {
                for col in 0..n {
                    let v = clip.target[(r, col)];
                    // Orientation-agnostic: count by the smaller index.
                    if r.min(col) < band_end {
                        grating += v;
                    }
                    if r.max(col) >= band_end {
                        isolated += v;
                    }
                }
            }
            grating > 0.0 && isolated > 0.0
        }));
    }

    #[test]
    fn downsample_preserves_area_and_halves_dim() {
        let c = cfg();
        let clip = Suite::generate(SuiteKind::ContactArray, &c, 1).clips()[0].clone();
        let coarse = clip.downsample(2);
        assert_eq!(coarse.target.dim(), clip.target.dim() / 2);
        assert_eq!(coarse.area_nm2, clip.area_nm2);
        assert_eq!(coarse.name, clip.name);
        // Pixel sums shrink by exactly factor² (block means preserve mass).
        let fine_sum = clip.target.sum();
        let coarse_sum = coarse.target.sum();
        assert!((coarse_sum * 4.0 - fine_sum).abs() < 1e-9);
        // Interior edge pixels may be fractional but stay in [0, 1].
        assert!(coarse.target.min() >= 0.0 && coarse.target.max() <= 1.0);
    }

    #[test]
    fn simple_rect_is_centered_and_binary() {
        let clip = Clip::simple_rect(&cfg());
        let n = cfg().mask_dim();
        assert_eq!(clip.target[(n / 2, n / 2)], 1.0);
        assert_eq!(clip.target[(0, 0)], 0.0);
        assert!(clip.area_nm2 > 0.0);
    }
}
