//! Synthetic benchmark suites reproducing the statistics of paper Table 2.
//!
//! The paper evaluates on the ICCAD-2013 contest metal clips, the larger
//! ICCAD-L set, and ISPD-2019 metal+via clips. Those layout files are not
//! redistributable here (data gate — DESIGN.md §3), so this module generates
//! seeded Manhattan layouts that match each suite's published knobs: average
//! pattern area, clip count, layer mix and critical dimension. The
//! optimizers only ever see the rasterized target `Z_t`, so matching these
//! statistics reproduces the suites' relative difficulty ordering.

use bismo_optics::{OpticalConfig, RealField};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which published suite a generated set mimics (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// ICCAD-2013 contest: 10 metal clips, CD 32 nm, avg area ≈ 0.2 µm².
    Iccad13,
    /// ICCAD-L: 10 larger metal clips, CD 32 nm, avg area ≈ 0.48 µm².
    IccadL,
    /// ISPD-2019: 100 metal+via clips, CD 28 nm, avg area ≈ 0.7 µm².
    Ispd19,
}

impl SuiteKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SuiteKind::Iccad13 => "ICCAD13",
            SuiteKind::IccadL => "ICCAD-L",
            SuiteKind::Ispd19 => "ISPD19",
        }
    }

    /// Inverse of [`SuiteKind::name`], used when reloading journaled
    /// benchmark records.
    pub fn from_name(name: &str) -> Option<SuiteKind> {
        SuiteKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Clip count of the published suite (Table 2 "Test num.").
    pub fn test_count(&self) -> usize {
        match self {
            SuiteKind::Iccad13 | SuiteKind::IccadL => 10,
            SuiteKind::Ispd19 => 100,
        }
    }

    /// Critical dimension in nm (Table 2).
    pub fn cd_nm(&self) -> f64 {
        match self {
            SuiteKind::Iccad13 | SuiteKind::IccadL => 32.0,
            SuiteKind::Ispd19 => 28.0,
        }
    }

    /// Layer mix (Table 2).
    pub fn layer(&self) -> &'static str {
        match self {
            SuiteKind::Iccad13 | SuiteKind::IccadL => "Metal",
            SuiteKind::Ispd19 => "Metal+Via",
        }
    }

    /// Target average pattern area per clip in nm² (Table 2).
    pub fn target_area_nm2(&self) -> f64 {
        match self {
            SuiteKind::Iccad13 => 202_655.0,
            SuiteKind::IccadL => 475_571.0,
            SuiteKind::Ispd19 => 698_743.0,
        }
    }

    /// Deterministic base seed so every harness regenerates identical clips.
    pub fn seed(&self) -> u64 {
        match self {
            SuiteKind::Iccad13 => 13,
            SuiteKind::IccadL => 17,
            SuiteKind::Ispd19 => 19,
        }
    }

    /// All three suites in table order.
    pub fn all() -> [SuiteKind; 3] {
        [SuiteKind::Iccad13, SuiteKind::IccadL, SuiteKind::Ispd19]
    }
}

/// One benchmark clip: a rasterized binary target pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Suite-local identifier (e.g. `ICCAD13/test3`).
    pub name: String,
    /// Binary target `Z_t` on the mask grid.
    pub target: RealField,
    /// Pattern area in nm².
    pub area_nm2: f64,
}

impl Clip {
    /// A deterministic single-rectangle clip; handy for tests and the
    /// quickstart example.
    pub fn simple_rect(cfg: &OpticalConfig) -> Clip {
        let n = cfg.mask_dim();
        let target = RealField::from_fn(n, |r, c| {
            if (3 * n / 8..5 * n / 8).contains(&r) && (n / 3..2 * n / 3).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let area = target.sum() * cfg.pixel_nm() * cfg.pixel_nm();
        Clip {
            name: "simple_rect".into(),
            target,
            area_nm2: area,
        }
    }
}

/// A generated benchmark suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    kind: SuiteKind,
    clips: Vec<Clip>,
    pixel_nm: f64,
}

impl Suite {
    /// Generates `count` clips of `kind` on `cfg`'s mask grid from the
    /// suite's deterministic seed. Pass `kind.test_count()` to mirror the
    /// published size, or a smaller count for quick runs.
    pub fn generate(kind: SuiteKind, cfg: &OpticalConfig, count: usize) -> Suite {
        let mut rng = StdRng::seed_from_u64(kind.seed());
        let clips = (0..count)
            .map(|i| generate_clip(kind, cfg, i, &mut rng))
            .collect();
        Suite {
            kind,
            clips,
            pixel_nm: cfg.pixel_nm(),
        }
    }

    /// The suite kind.
    pub fn kind(&self) -> SuiteKind {
        self.kind
    }

    /// Generated clips.
    pub fn clips(&self) -> &[Clip] {
        &self.clips
    }

    /// Average pattern area over the generated clips in nm².
    pub fn average_area_nm2(&self) -> f64 {
        if self.clips.is_empty() {
            return 0.0;
        }
        self.clips.iter().map(|c| c.area_nm2).sum::<f64>() / self.clips.len() as f64
    }
}

/// Draws one clip: Manhattan wires (and vias for ISPD19) until the target
/// density is met, inside a guard band that keeps features imageable.
fn generate_clip(kind: SuiteKind, cfg: &OpticalConfig, index: usize, rng: &mut StdRng) -> Clip {
    let n = cfg.mask_dim();
    let pixel = cfg.pixel_nm();
    let tile_nm = cfg.tile_nm();
    // The published suites put their pattern inside a 4 µm² window; scale
    // the target area by our tile's share of that window so density (and
    // thus difficulty) is preserved on smaller grids.
    let area_scale = (tile_nm * tile_nm) / 4.0e6;
    let target_area = kind.target_area_nm2() * area_scale;

    let cd_px = (kind.cd_nm() / pixel).round().max(1.0) as usize;
    let guard = n / 8;
    let lo = guard;
    let hi = n - guard;

    let mut field = RealField::zeros(n);
    let mut area = 0.0;
    let max_shapes = 400;
    let mut shapes = 0;
    while area < target_area && shapes < max_shapes {
        shapes += 1;
        let is_via = kind == SuiteKind::Ispd19 && rng.gen_bool(0.35);
        if is_via {
            // Vias: squares of ~1.5×CD.
            let side = (cd_px * 3).div_ceil(2);
            let r0 = rng.gen_range(lo..hi.saturating_sub(side));
            let c0 = rng.gen_range(lo..hi.saturating_sub(side));
            fill_rect(&mut field, r0, r0 + side, c0, c0 + side);
        } else {
            // Wires: CD-wide bars with length 4–16 CD, alternating
            // orientation to mimic routing layers. Cap the length by the
            // remaining area budget so small grids don't overshoot the
            // suite's target density.
            let remaining_px = ((target_area - area) / (pixel * pixel)).max(0.0) as usize;
            let budget_len = (remaining_px / cd_px).max(2 * cd_px);
            let len_px = (cd_px * rng.gen_range(4..=16)).min(budget_len);
            let horizontal = rng.gen_bool(0.5);
            if horizontal {
                let r0 = rng.gen_range(lo..hi.saturating_sub(cd_px));
                let c0 = rng.gen_range(lo..hi.saturating_sub(len_px.min(hi - lo - 1)));
                let c1 = (c0 + len_px).min(hi);
                fill_rect(&mut field, r0, r0 + cd_px, c0, c1);
                // Occasionally grow an L-jog, characteristic of metal clips.
                if rng.gen_bool(0.4) {
                    let jog = cd_px * rng.gen_range(2..=6);
                    let r1 = (r0 + cd_px + jog).min(hi);
                    let cj = c1.saturating_sub(cd_px).max(c0);
                    fill_rect(&mut field, r0, r1, cj, cj + cd_px.min(hi - cj));
                }
            } else {
                let c0 = rng.gen_range(lo..hi.saturating_sub(cd_px));
                let r0 = rng.gen_range(lo..hi.saturating_sub(len_px.min(hi - lo - 1)));
                let r1 = (r0 + len_px).min(hi);
                fill_rect(&mut field, r0, r1, c0, c0 + cd_px);
                if rng.gen_bool(0.4) {
                    let jog = cd_px * rng.gen_range(2..=6);
                    let c1 = (c0 + cd_px + jog).min(hi);
                    let rj = r1.saturating_sub(cd_px).max(r0);
                    fill_rect(&mut field, rj, rj + cd_px.min(hi - rj), c0, c1);
                }
            }
        }
        area = field.sum() * pixel * pixel;
    }

    Clip {
        name: format!("{}/test{}", kind.name(), index + 1),
        target: field,
        area_nm2: area,
    }
}

fn fill_rect(field: &mut RealField, r0: usize, r1: usize, c0: usize, c1: usize) {
    let n = field.dim();
    for r in r0..r1.min(n) {
        for c in c0..c1.min(n) {
            field[(r, c)] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OpticalConfig {
        OpticalConfig::test_small()
    }

    #[test]
    fn kinds_report_table2_facts() {
        assert_eq!(SuiteKind::Iccad13.test_count(), 10);
        assert_eq!(SuiteKind::Ispd19.test_count(), 100);
        assert_eq!(SuiteKind::IccadL.cd_nm(), 32.0);
        assert_eq!(SuiteKind::Ispd19.cd_nm(), 28.0);
        assert_eq!(SuiteKind::Ispd19.layer(), "Metal+Via");
    }

    #[test]
    fn from_name_round_trips() {
        for kind in SuiteKind::all() {
            assert_eq!(SuiteKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SuiteKind::from_name("nope"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Suite::generate(SuiteKind::Iccad13, &cfg(), 3);
        let b = Suite::generate(SuiteKind::Iccad13, &cfg(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn suites_differ_by_seed() {
        let a = Suite::generate(SuiteKind::Iccad13, &cfg(), 2);
        let b = Suite::generate(SuiteKind::IccadL, &cfg(), 2);
        assert_ne!(a.clips()[0].target, b.clips()[0].target);
    }

    #[test]
    fn targets_are_binary_with_guard_band() {
        let s = Suite::generate(SuiteKind::Ispd19, &cfg(), 4);
        let n = cfg().mask_dim();
        for clip in s.clips() {
            for r in 0..n {
                for c in 0..n {
                    let v = clip.target[(r, c)];
                    assert!(v == 0.0 || v == 1.0);
                    if r < n / 8 || r >= n - n / 8 || c < n / 8 || c >= n - n / 8 {
                        assert_eq!(v, 0.0, "feature leaked into guard band at ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn average_area_tracks_suite_ordering() {
        // Density ordering ICCAD13 < ICCAD-L < ISPD19 must survive scaling.
        let c = cfg();
        let a = Suite::generate(SuiteKind::Iccad13, &c, 6).average_area_nm2();
        let b = Suite::generate(SuiteKind::IccadL, &c, 6).average_area_nm2();
        let d = Suite::generate(SuiteKind::Ispd19, &c, 6).average_area_nm2();
        assert!(a < b && b < d, "areas: {a} {b} {d}");
    }

    #[test]
    fn average_area_is_near_scaled_target() {
        let c = cfg();
        let scale = (c.tile_nm() * c.tile_nm()) / 4.0e6;
        for kind in SuiteKind::all() {
            let s = Suite::generate(kind, &c, 8);
            let got = s.average_area_nm2();
            let want = kind.target_area_nm2() * scale;
            assert!(
                got > 0.75 * want && got < 1.6 * want,
                "{}: got {got:.0} want ≈{want:.0}",
                kind.name()
            );
        }
    }

    #[test]
    fn clip_names_are_sequential() {
        let s = Suite::generate(SuiteKind::Iccad13, &cfg(), 3);
        assert_eq!(s.clips()[0].name, "ICCAD13/test1");
        assert_eq!(s.clips()[2].name, "ICCAD13/test3");
    }

    #[test]
    fn simple_rect_is_centered_and_binary() {
        let clip = Clip::simple_rect(&cfg());
        let n = cfg().mask_dim();
        assert_eq!(clip.target[(n / 2, n / 2)], 1.0);
        assert_eq!(clip.target[(0, 0)], 0.0);
        assert!(clip.area_nm2 > 0.0);
    }
}
