//! # bismo-layout
//!
//! Synthetic benchmark layouts for the BiSMO workspace (reproduction of
//! *"Efficient Bilevel Source Mask Optimization"*, DAC 2024).
//!
//! The paper's evaluation uses the ICCAD-2013, ICCAD-L and ISPD-2019 layout
//! suites (Table 2); those files cannot be redistributed, so [`Suite`]
//! generates seeded Manhattan layouts matching each suite's published
//! statistics (clip count, layer mix, CD, average area). [`write_pgm`]
//! renders result-sample panels (Figure 4).
//!
//! ## Examples
//!
//! ```
//! use bismo_layout::{Suite, SuiteKind};
//! use bismo_optics::OpticalConfig;
//!
//! let cfg = OpticalConfig::test_small();
//! let suite = Suite::generate(SuiteKind::Iccad13, &cfg, 3);
//! assert_eq!(suite.clips().len(), 3);
//! assert!(suite.average_area_nm2() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pgm;
mod suite;

pub use pgm::{upsample, write_pgm, write_pgm_to};
pub use suite::{Clip, Suite, SuiteKind};
