//! Grayscale PGM (P5) image output for result samples (paper Figure 4:
//! source / mask / resist panels).
//!
//! PGM is chosen because it needs no codec dependency and every common image
//! viewer opens it.

use std::io::{self, Write};
use std::path::Path;

use bismo_optics::RealField;

/// Writes a [`RealField`] as an 8-bit binary PGM, linearly mapping
/// `[min, max]` of the field to `[0, 255]` (a constant field maps to 0).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_pgm(field: &RealField, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    write_pgm_to(field, &mut w)
}

/// Writes a PGM to any writer; see [`write_pgm`]. A `&mut` writer may be
/// passed since `Write` is implemented for mutable references.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_pgm_to<W: Write>(field: &RealField, mut w: W) -> io::Result<()> {
    let n = field.dim();
    let (lo, hi) = (field.min(), field.max());
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    write!(w, "P5\n{n} {n}\n255\n")?;
    let bytes: Vec<u8> = field
        .as_slice()
        .iter()
        .map(|&v| (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&bytes)
}

/// Upsamples a small grid (e.g. an `N_j × N_j` source) by pixel replication
/// so it is visible next to mask-sized panels.
#[must_use]
pub fn upsample(field: &RealField, factor: usize) -> RealField {
    let factor = factor.max(1);
    let n = field.dim();
    RealField::from_fn(n * factor, |r, c| field[(r / factor, c / factor)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_payload_are_well_formed() {
        let f = RealField::from_vec(2, vec![0.0, 1.0, 0.5, 0.25]);
        let mut buf = Vec::new();
        write_pgm_to(&f, &mut buf).unwrap();
        let header_end = buf.windows(1).take(20).len();
        assert!(header_end > 0);
        let text = String::from_utf8_lossy(&buf[..9]);
        assert!(text.starts_with("P5\n2 2\n"));
        // Payload: 4 bytes, extremes map to 0 and 255.
        let payload = &buf[buf.len() - 4..];
        assert_eq!(payload[0], 0);
        assert_eq!(payload[1], 255);
    }

    #[test]
    fn constant_field_does_not_divide_by_zero() {
        let f = RealField::filled(3, 0.7);
        let mut buf = Vec::new();
        write_pgm_to(&f, &mut buf).unwrap();
        let payload = &buf[buf.len() - 9..];
        assert!(payload.iter().all(|&b| b == 0));
    }

    #[test]
    fn upsample_replicates_pixels() {
        let f = RealField::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        let u = upsample(&f, 3);
        assert_eq!(u.dim(), 6);
        assert_eq!(u[(0, 0)], 1.0);
        assert_eq!(u[(2, 2)], 1.0);
        assert_eq!(u[(0, 3)], 2.0);
        assert_eq!(u[(5, 5)], 4.0);
    }

    #[test]
    fn write_to_disk_roundtrip() {
        let dir = std::env::temp_dir().join("bismo_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let f = RealField::filled(4, 1.0);
        write_pgm(&f, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n4 4\n255\n"));
        assert_eq!(bytes.len(), b"P5\n4 4\n255\n".len() + 16);
        let _ = std::fs::remove_file(path);
    }
}
