//! # bismo-testkit
//!
//! Shared test infrastructure for the BiSMO workspace: small deterministic
//! problem fixtures, finite-difference gradient checkers and field/tolerance
//! assertion helpers. Every integration test in the workspace builds on
//! these so that fixtures and tolerances are defined exactly once.
//!
//! ## Examples
//!
//! ```
//! use bismo_testkit::{check_gradient, Fixture, GradCheckSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fx = Fixture::small()?;
//! // Check ∂L/∂θ_J on a few coordinates against central differences.
//! let eval = fx.problem.eval(&fx.theta_j, &fx.theta_m, bismo_core::GradRequest::SOURCE)?;
//! let analytic = eval.grad_theta_j.unwrap();
//! let report = check_gradient(
//!     |tj| fx.problem.loss(tj, &fx.theta_m).unwrap().total,
//!     &fx.theta_j,
//!     &analytic,
//!     &[0, 7, 24],
//!     GradCheckSpec::default(),
//! );
//! assert!(report.max_rel_err < 1e-4, "{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use bismo_core::{SmoProblem, SmoSettings};
use bismo_fft::Complex64;
use bismo_layout::Clip;
use bismo_litho::LithoError;
use bismo_optics::{OpticalConfig, RealField, SourceShape};
use rand::{rngs::StdRng, Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// A ready-to-run small SMO problem: `OpticalConfig::test_small` optics, the
/// `Clip::simple_rect` target, annular-template `θ_J` and target-derived
/// `θ_M` — the canonical starting point of every workspace integration test.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// The optical configuration (64×64 mask grid test preset).
    pub cfg: OpticalConfig,
    /// The SMO problem over the simple-rect target.
    pub problem: SmoProblem,
    /// Annular-template source parameters.
    pub theta_j: Vec<f64>,
    /// Target-derived mask parameters.
    pub theta_m: RealField,
}

impl Fixture {
    /// Builds the canonical small fixture (PVB term enabled).
    ///
    /// # Errors
    ///
    /// Propagates problem-construction failures (none for the shipped
    /// presets; kept fallible so tests exercise the real constructor).
    pub fn small() -> Result<Fixture, LithoError> {
        Fixture::with_settings(SmoSettings::default())
    }

    /// Builds the small fixture with the PVB term disabled — the cheapest
    /// configuration, used where process-window corners are irrelevant.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction failures.
    pub fn small_no_pvb() -> Result<Fixture, LithoError> {
        Fixture::with_settings(SmoSettings::default().without_pvb())
    }

    /// Builds the small fixture with explicit objective settings.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction failures.
    pub fn with_settings(settings: SmoSettings) -> Result<Fixture, LithoError> {
        let cfg = OpticalConfig::test_small();
        let clip = Clip::simple_rect(&cfg);
        let problem = SmoProblem::new(cfg.clone(), settings, clip.target)?;
        let theta_j = problem.init_theta_j(SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        });
        let theta_m = problem.init_theta_m();
        Ok(Fixture {
            cfg,
            problem,
            theta_j,
            theta_m,
        })
    }
}

/// Deterministic random field with entries in `[lo, hi)`.
pub fn random_field(seed: u64, dim: usize, lo: f64, hi: f64) -> RealField {
    let mut rng = StdRng::seed_from_u64(seed);
    RealField::from_fn(dim, |_, _| rng.gen_range(lo..hi))
}

/// Deterministic random complex vector with re/im in `[-1, 1)`.
pub fn random_complex_vec(seed: u64, len: usize) -> Vec<Complex64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Complex64::new(rng.gen_range(-1.0f64..1.0), rng.gen_range(-1.0f64..1.0)))
        .collect()
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checking
// ---------------------------------------------------------------------------

/// Step size and tolerances for a finite-difference gradient check.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckSpec {
    /// Central-difference step.
    pub eps: f64,
    /// Relative tolerance (scaled by the larger gradient magnitude).
    pub rtol: f64,
    /// Absolute floor below which differences are ignored.
    pub atol: f64,
}

impl Default for GradCheckSpec {
    fn default() -> GradCheckSpec {
        GradCheckSpec {
            eps: 1e-5,
            rtol: 1e-4,
            atol: 1e-7,
        }
    }
}

/// Outcome of a gradient check: worst coordinate and its errors.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across the probed coordinates.
    pub max_rel_err: f64,
    /// Largest absolute error across the probed coordinates.
    pub max_abs_err: f64,
    /// Coordinate index realizing `max_rel_err`.
    pub worst_index: usize,
    /// Numeric (central-difference) derivative at the worst coordinate.
    pub worst_numeric: f64,
    /// Analytic derivative at the worst coordinate.
    pub worst_analytic: f64,
    /// Number of coordinates probed.
    pub probed: usize,
}

impl fmt::Display for GradCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grad check over {} coords: max rel err {:.3e} (abs {:.3e}) at index {}: numeric {:.6e} vs analytic {:.6e}",
            self.probed,
            self.max_rel_err,
            self.max_abs_err,
            self.worst_index,
            self.worst_numeric,
            self.worst_analytic
        )
    }
}

impl GradCheckReport {
    /// Panics with the report if the check exceeded `spec`'s tolerances.
    pub fn assert_ok(&self, spec: GradCheckSpec, label: &str) {
        assert!(
            self.max_rel_err <= spec.rtol,
            "{label}: analytic gradient disagrees with finite differences — {self}"
        );
    }
}

/// Central-difference check of an analytic gradient over a flat `&[f64]`
/// parameter vector, probing only `indices` (full sweeps are quadratic in
/// problem size; probing a spread of coordinates is the standard practice).
///
/// Relative error uses `|num − ana| / max(|num|, |ana|, atol/rtol)` so tiny
/// gradients are judged on the absolute floor instead of blowing up.
pub fn check_gradient<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x: &[f64],
    analytic: &[f64],
    indices: &[usize],
    spec: GradCheckSpec,
) -> GradCheckReport {
    assert_eq!(
        x.len(),
        analytic.len(),
        "parameter and gradient vectors must have equal length"
    );
    assert!(!indices.is_empty(), "must probe at least one coordinate");
    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        max_abs_err: 0.0,
        worst_index: indices[0],
        worst_numeric: 0.0,
        worst_analytic: 0.0,
        probed: indices.len(),
    };
    let mut buf = x.to_vec();
    for &i in indices {
        assert!(i < x.len(), "probe index {i} out of bounds ({})", x.len());
        buf[i] = x[i] + spec.eps;
        let fp = f(&buf);
        buf[i] = x[i] - spec.eps;
        let fm = f(&buf);
        buf[i] = x[i];
        let numeric = (fp - fm) / (2.0 * spec.eps);
        let abs_err = (numeric - analytic[i]).abs();
        let scale = numeric
            .abs()
            .max(analytic[i].abs())
            .max(spec.atol / spec.rtol);
        let rel_err = abs_err / scale;
        report.max_abs_err = report.max_abs_err.max(abs_err);
        if rel_err > report.max_rel_err {
            report.max_rel_err = rel_err;
            report.worst_index = i;
            report.worst_numeric = numeric;
            report.worst_analytic = analytic[i];
        }
    }
    report
}

/// [`check_gradient`] over a [`RealField`] parameter block (row-major
/// flattening, matching the workspace's gradient layout).
pub fn check_gradient_field<F: FnMut(&RealField) -> f64>(
    mut f: F,
    x: &RealField,
    analytic: &RealField,
    indices: &[usize],
    spec: GradCheckSpec,
) -> GradCheckReport {
    assert_eq!(x.dim(), analytic.dim(), "field dimension mismatch");
    let dim = x.dim();
    check_gradient(
        |flat| f(&RealField::from_vec(dim, flat.to_vec())),
        x.as_slice(),
        analytic.as_slice(),
        indices,
        spec,
    )
}

/// Evenly spread probe indices over a parameter vector of length `len`
/// (always includes the first and last coordinate).
pub fn spread_indices(len: usize, count: usize) -> Vec<usize> {
    assert!(len > 0 && count > 0);
    if count >= len {
        return (0..len).collect();
    }
    let mut out: Vec<usize> = (0..count)
        .map(|k| k * (len - 1) / (count.max(2) - 1))
        .collect();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// Tolerance assertions
// ---------------------------------------------------------------------------

/// Asserts two scalars agree within `atol + rtol·|b|`.
pub fn assert_close(a: f64, b: f64, rtol: f64, atol: f64, label: &str) {
    let tol = atol + rtol * b.abs();
    assert!(
        (a - b).abs() <= tol,
        "{label}: {a} vs {b} (|Δ| = {:.3e} > tol {:.3e})",
        (a - b).abs(),
        tol
    );
}

/// Largest absolute elementwise difference between two fields.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn max_abs_diff(a: &RealField, b: &RealField) -> f64 {
    assert_eq!(a.dim(), b.dim(), "field dimension mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Asserts two fields agree elementwise within `atol`.
pub fn assert_fields_close(a: &RealField, b: &RealField, atol: f64, label: &str) {
    let d = max_abs_diff(a, b);
    assert!(d <= atol, "{label}: max |Δ| = {d:.3e} > {atol:.3e}");
}

/// Asserts two complex slices agree elementwise within `atol`.
pub fn assert_complex_close(a: &[Complex64], b: &[Complex64], atol: f64, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let d = (*x - *y).abs();
        assert!(d <= atol, "{label}[{i}]: |Δ| = {d:.3e} > {atol:.3e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_passes_check() {
        // f(x) = Σ i·x_i² has gradient 2·i·x_i.
        let x: Vec<f64> = (0..10).map(|i| 0.3 + 0.1 * i as f64).collect();
        let g: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * i as f64 * v)
            .collect();
        let report = check_gradient(
            |p| p.iter().enumerate().map(|(i, v)| i as f64 * v * v).sum(),
            &x,
            &g,
            &spread_indices(10, 5),
            GradCheckSpec::default(),
        );
        report.assert_ok(GradCheckSpec::default(), "quadratic");
    }

    #[test]
    #[should_panic(expected = "disagrees with finite differences")]
    fn wrong_gradient_fails_check() {
        let x = vec![1.0, 2.0];
        let wrong = vec![0.0, 0.0];
        let report = check_gradient(
            |p| p.iter().map(|v| v * v).sum(),
            &x,
            &wrong,
            &[0, 1],
            GradCheckSpec::default(),
        );
        report.assert_ok(GradCheckSpec::default(), "wrong");
    }

    #[test]
    fn spread_indices_cover_endpoints() {
        let idx = spread_indices(100, 5);
        assert_eq!(idx.first(), Some(&0));
        assert_eq!(idx.last(), Some(&99));
        assert!(idx.len() <= 5);
        let all = spread_indices(3, 10);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn fixture_builds_and_evaluates() {
        let fx = Fixture::small_no_pvb().unwrap();
        let loss = fx.problem.loss(&fx.theta_j, &fx.theta_m).unwrap();
        assert!(loss.total.is_finite() && loss.total > 0.0);
    }

    #[test]
    fn random_helpers_are_deterministic() {
        assert_eq!(random_field(7, 8, 0.0, 1.0), random_field(7, 8, 0.0, 1.0));
        let a = random_complex_vec(3, 16);
        let b = random_complex_vec(3, 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re, y.re);
            assert_eq!(x.im, y.im);
        }
    }

    #[test]
    fn field_assertions_catch_differences() {
        let a = RealField::filled(4, 1.0);
        let b = RealField::filled(4, 1.0 + 1e-3);
        assert!((max_abs_diff(&a, &b) - 1e-3).abs() < 1e-12);
        assert_fields_close(&a, &b, 2e-3, "close");
        let r = std::panic::catch_unwind(|| assert_fields_close(&a, &b, 1e-6, "far"));
        assert!(r.is_err());
    }
}
