//! Fixture: every pattern the bit-exact rule must reject, unjustified.
//!
//! @bismo:bit-exact

pub fn fma(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

#[cfg(target_feature = "avx2")]
pub fn wide() {}

#[cfg(test)]
mod tests {
    #[test]
    fn the_same_patterns_are_fine_in_test_code() {
        let _ = 2.0_f64.mul_add(3.0, 1.0);
    }
}
