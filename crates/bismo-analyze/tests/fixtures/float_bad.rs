//! Fixture: exact float comparisons with no stated rationale.

pub fn is_nominal(dose: f64) -> bool {
    dose == 1.0
}

pub fn is_enabled(w: f64) -> bool {
    w != 0.0
}
