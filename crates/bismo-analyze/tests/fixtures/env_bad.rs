//! Fixture: an undocumented knob literal and an unmarked dynamic read.

pub fn knob() -> Option<String> {
    std::env::var("BISMO_TYPO_KNOB").ok()
}

pub fn dynamic(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

pub fn documented() -> Option<String> {
    std::env::var("BISMO_SCALE").ok()
}
