//! Fixture: justified panic sites — both comment placements the window allows.

pub fn first(xs: &[f64]) -> f64 {
    // PANIC-OK: callers validate non-empty input at construction.
    *xs.first().unwrap()
}

pub fn boom() {
    panic!("nope"); // PANIC-OK: failing fast is the documented contract here.
}
