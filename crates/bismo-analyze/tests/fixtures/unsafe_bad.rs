//! Fixture: a crate root missing its gate, plus a stray `unsafe`.

pub fn peek(xs: &[f64]) -> f64 {
    unsafe { *xs.as_ptr() }
}
