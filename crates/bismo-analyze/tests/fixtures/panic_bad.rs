//! Fixture: the panic surface in non-test library code, unjustified.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn checked(x: Option<f64>) -> f64 {
    x.expect("always present")
}

pub fn boom() {
    panic!("nope");
}

pub fn census(xs: &[f64]) -> f64 {
    xs[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_code_is_fine() {
        Some(1).unwrap();
    }
}
