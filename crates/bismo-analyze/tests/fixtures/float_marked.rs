//! Fixture: a justified exact sentinel comparison.

pub fn is_nominal(dose: f64) -> bool {
    // FLOAT-EQ-OK: the nominal corner stores exactly 1.0 by construction.
    dose == 1.0
}
