//! Fixture: a clean library file — the whole catalog must stay silent.

/// Total via an explicit accumulation loop (no iterator `.sum()`).
pub fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Tolerance comparison, the way the float-eq rule wants it.
pub fn near(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}
