//! Fixture: the same patterns, each carrying a justification marker.
//!
//! @bismo:bit-exact

pub fn fma(a: f64, b: f64, c: f64) -> f64 {
    // BIT-EXACT-OK: separate mul and add by construction in this fixture.
    a.mul_add(b, c)
}

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum() // BIT-EXACT-OK: fold order pinned by the Sum impl under test.
}
