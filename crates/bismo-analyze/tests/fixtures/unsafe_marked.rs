//! Fixture: the sanctioned exception shape — one justified use, one bare.
//!
//! @bismo:allow-unsafe

pub fn peek(xs: &[f64]) -> f64 {
    // SAFETY: the slice is non-empty and its pointer is valid for reads.
    unsafe { *xs.as_ptr() }
}

pub fn peek2(xs: &[f64]) -> f64 {
    unsafe { *xs.as_ptr() }
}
