//! Fixture: a justified dynamic knob read.

pub fn dynamic(name: &str) -> Option<String> {
    // ENV-OK: callers pass documented BISMO_* literals; values strict-parsed.
    std::env::var(name).ok()
}
