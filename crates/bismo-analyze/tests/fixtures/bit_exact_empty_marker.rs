//! @bismo:bit-exact

pub fn fma(a: f64, b: f64, c: f64) -> f64 {
    // BIT-EXACT-OK:
    a.mul_add(b, c)
}
