//! Per-rule fixture tests: each fixture under `tests/fixtures/` encodes one
//! rule's contract — exact finding spans on the bad fixture, full suppression
//! on the marked fixture, zero findings on the clean file — plus CLI-level
//! exit-code tests and a self-run over the real workspace.
//!
//! The fixtures are deliberate rule violations; `classify` skips any path
//! containing `tests/fixtures`, so the workspace walk never scans them.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use bismo_analyze::engine::analyze_file;
use bismo_analyze::rules::{all_rules, Ctx, Finding, Severity};
use bismo_analyze::source::FileKind;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

/// Analyze one fixture with the full catalog and a fixed knob registry
/// (`BISMO_SCALE` only), so expectations don't drift with the real README.
fn check(name: &str, kind: FileKind) -> Vec<Finding> {
    let ctx = Ctx::new(BTreeSet::from(["BISMO_SCALE".to_string()]));
    analyze_file(&fixture(name), kind, &ctx, &all_rules()).unwrap()
}

fn deny_spans(findings: &[Finding]) -> Vec<(&'static str, usize, usize)> {
    findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| (f.rule, f.line, f.col))
        .collect()
}

const LIB: FileKind = FileKind::Lib { crate_root: false };

#[test]
fn bit_exact_bad_flags_each_pattern_at_exact_spans() {
    let findings = check("bit_exact_bad.rs", LIB);
    assert_eq!(
        deny_spans(&findings),
        vec![
            ("bit-exact-purity", 6, 7),   // a.mul_add(b, c)
            ("bit-exact-purity", 10, 15), // xs.iter().sum()
            ("bit-exact-purity", 13, 7),  // cfg(target_feature = "avx2")
        ],
    );
    assert!(findings[0].message.contains("mul_add"));
    assert!(findings[1].message.contains(".sum()"));
    assert!(findings[2].message.contains("target_feature"));
}

#[test]
fn bit_exact_markers_suppress_every_finding() {
    let findings = check("bit_exact_marked.rs", LIB);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn bit_exact_empty_marker_is_itself_a_finding() {
    let findings = check("bit_exact_empty_marker.rs", LIB);
    assert_eq!(deny_spans(&findings), vec![("bit-exact-purity", 5, 7)]);
    assert!(
        findings[0].message.contains("empty justification"),
        "message should call out the empty marker: {}",
        findings[0].message
    );
}

#[test]
fn panic_bad_flags_unwrap_expect_and_panic_but_not_test_code() {
    let findings = check("panic_bad.rs", LIB);
    assert_eq!(
        deny_spans(&findings),
        vec![
            ("panic-surface", 4, 17), // *xs.first().unwrap()
            ("panic-surface", 8, 7),  // x.expect("always present")
            ("panic-surface", 12, 5), // panic!("nope")
        ],
    );
    // The `xs[0]` census rides along as warn-severity advisory only.
    let warns: Vec<_> = findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .collect();
    assert_eq!(warns.len(), 1);
    assert_eq!(warns[0].line, 16);
    assert!(warns[0].message.contains("1 `[idx]`"));
}

#[test]
fn panic_markers_suppress_in_both_comment_positions() {
    let findings = check("panic_marked.rs", LIB);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn panic_rule_does_not_apply_to_bins_or_tests() {
    for kind in [FileKind::Bin, FileKind::Test] {
        let findings = check("panic_bad.rs", kind);
        assert!(
            !findings.iter().any(|f| f.rule == "panic-surface"),
            "panic-surface should not fire on {kind:?}: {findings:?}"
        );
    }
}

#[test]
fn unsafe_bad_flags_missing_root_gate_and_stray_unsafe() {
    let findings = check("unsafe_bad.rs", FileKind::Lib { crate_root: true });
    assert_eq!(
        deny_spans(&findings),
        vec![
            ("unsafe-hygiene", 1, 1), // missing #![forbid(unsafe_code)]
            ("unsafe-hygiene", 4, 5), // the unsafe block
        ],
    );
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
}

#[test]
fn sanctioned_unsafe_still_requires_per_site_safety_comments() {
    let findings = check("unsafe_marked.rs", LIB);
    // Line 7 is covered by its SAFETY comment; line 11 is bare.
    assert_eq!(deny_spans(&findings), vec![("unsafe-hygiene", 11, 5)]);
    assert!(findings[0].message.contains("SAFETY"));
}

#[test]
fn env_bad_flags_undocumented_knob_and_dynamic_read() {
    let findings = check("env_bad.rs", LIB);
    assert_eq!(
        deny_spans(&findings),
        vec![
            ("env-knob-registry", 4, 19), // "BISMO_TYPO_KNOB" literal
            ("env-knob-registry", 8, 10), // env::var(name)
        ],
    );
    assert!(findings[0].message.contains("BISMO_TYPO_KNOB"));
    // "BISMO_SCALE" on line 12 is in the registry: no third finding.
}

#[test]
fn env_marker_suppresses_dynamic_read() {
    let findings = check("env_marked.rs", LIB);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn float_bad_flags_both_comparison_operators() {
    let findings = check("float_bad.rs", LIB);
    assert_eq!(
        deny_spans(&findings),
        vec![("float-eq", 4, 10), ("float-eq", 8, 7)],
    );
    assert!(findings[0].message.contains("`==`"));
    assert!(findings[1].message.contains("`!=`"));
}

#[test]
fn float_marker_suppresses_and_test_kind_exempts() {
    assert!(check("float_marked.rs", LIB).is_empty());
    assert!(check("float_bad.rs", FileKind::Test).is_empty());
}

#[test]
fn clean_file_yields_zero_findings_at_every_kind() {
    for kind in [LIB, FileKind::Lib { crate_root: false }, FileKind::Test] {
        let findings = check("clean.rs", kind);
        assert!(findings.is_empty(), "{kind:?}: {findings:?}");
    }
}

// ---------------------------------------------------------------------------
// CLI-level tests: exit codes, JSON output, and the workspace self-run.
// ---------------------------------------------------------------------------

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bismo-analyze"));
    cmd.arg("--root").arg(workspace_root());
    cmd
}

#[test]
fn cli_deny_exits_2_on_each_rule_negative_fixture() {
    let cases = [
        ("bit_exact_bad.rs", "lib"),
        ("panic_bad.rs", "lib"),
        ("unsafe_bad.rs", "lib-root"),
        ("env_bad.rs", "lib"),
        ("float_bad.rs", "lib"),
    ];
    for (name, kind) in cases {
        let status = cli()
            .args(["--deny", "--kind", kind, "--path"])
            .arg(fixture(name))
            .status()
            .unwrap();
        assert_eq!(status.code(), Some(2), "{name} should fail --deny");
    }
}

#[test]
fn cli_without_deny_reports_but_exits_0() {
    let status = cli()
        .args(["--kind", "lib", "--path"])
        .arg(fixture("float_bad.rs"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
}

#[test]
fn cli_deny_exits_0_on_marked_and_clean_fixtures() {
    for (name, kind) in [
        ("bit_exact_marked.rs", "lib"),
        ("panic_marked.rs", "lib"),
        ("env_marked.rs", "lib"),
        ("float_marked.rs", "lib"),
        ("clean.rs", "lib"),
    ] {
        let status = cli()
            .args(["--deny", "--kind", kind, "--path"])
            .arg(fixture(name))
            .status()
            .unwrap();
        assert_eq!(status.code(), Some(0), "{name} should pass --deny");
    }
}

#[test]
fn cli_usage_errors_exit_1() {
    let status = cli().arg("--no-such-flag").status().unwrap();
    assert_eq!(status.code(), Some(1));
    let status = cli().args(["--kind", "bogus"]).status().unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn cli_list_rules_names_the_whole_catalog() {
    let out = cli().arg("--list-rules").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in [
        "bit-exact-purity",
        "panic-surface",
        "unsafe-hygiene",
        "env-knob-registry",
        "float-eq",
    ] {
        assert!(text.contains(id), "--list-rules missing {id}: {text}");
    }
}

#[test]
fn cli_out_writes_machine_readable_findings() {
    let out_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("findings.json");
    let status = cli()
        .args(["--kind", "lib", "--path"])
        .arg(fixture("float_bad.rs"))
        .arg("--out")
        .arg(&out_path)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"rule\": \"float-eq\""), "json: {json}");
    assert!(json.contains("\"severity\": \"deny\""), "json: {json}");
    assert!(json.contains("\"line\": 4"), "json: {json}");
}

/// The acceptance gate: the tree at merge carries zero deny findings. This is
/// the same invocation CI runs, so a regression fails the test suite locally
/// before it ever reaches the workflow.
#[test]
fn workspace_self_run_is_deny_clean() {
    let out = cli().arg("--deny").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace has deny findings:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 deny"), "summary missing: {stdout}");
}

#[test]
fn rule_filter_runs_only_the_selected_rule() {
    // panic_bad.rs has panic-surface findings; with --rule float-eq it's clean.
    let status = cli()
        .args(["--deny", "--rule", "float-eq", "--kind", "lib", "--path"])
        .arg(fixture("panic_bad.rs"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
    let status = cli().args(["--rule", "no-such-rule"]).status().unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn rule_catalog_ids_and_descriptions_are_stable() {
    let ids: Vec<&str> = all_rules().iter().map(|r| r.id()).collect();
    assert_eq!(
        ids,
        vec![
            "bit-exact-purity",
            "panic-surface",
            "unsafe-hygiene",
            "env-knob-registry",
            "float-eq"
        ]
    );
    for r in all_rules() {
        assert!(!r.describe().is_empty());
    }
}
