//! Finding output: human text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled with the same escape discipline as the
//! suite runner's journal (DESIGN.md §7) — no serde offline.

use std::fmt::Write as _;

use crate::engine::Analysis;

/// Escape a string for a JSON value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Human-readable report: one line per finding plus a summary.
pub fn render_text(a: &Analysis) -> String {
    let mut out = String::new();
    for f in &a.findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}: {}",
            f.path.display(),
            f.line,
            f.col,
            f.severity.as_str(),
            f.rule,
            f.message
        );
    }
    let _ = writeln!(
        out,
        "bismo-analyze: {} file(s) scanned, {} finding(s) ({} deny, {} warn)",
        a.files_scanned,
        a.findings.len(),
        a.deny_count(),
        a.warn_count()
    );
    out
}

/// Machine-readable report: a single JSON object with a findings array.
pub fn render_json(a: &Analysis) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", a.files_scanned);
    let _ = writeln!(out, "  \"deny\": {},", a.deny_count());
    let _ = writeln!(out, "  \"warn\": {},", a.warn_count());
    out.push_str("  \"findings\": [");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
             \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            f.severity.as_str(),
            json_escape(&f.path.display().to_string()),
            f.line,
            f.col,
            json_escape(&f.message)
        );
    }
    if !a.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
