//! Rule `unsafe-hygiene` — the workspace-wide no-unsafe contract.
//!
//! Every crate root and binary root must carry `#![forbid(unsafe_code)]`.
//! The one sanctioned exception class is a file tagged `//! @bismo:allow-unsafe`
//! (today: the counting allocator in `imaging_bench.rs`), where every
//! `unsafe` keyword must instead sit under a `// SAFETY:` comment. `unsafe`
//! anywhere else is a finding even before rustc sees it — the analyzer runs
//! without building the workspace, so CI fails in seconds, not minutes.

use crate::lexer::TokKind;
use crate::rules::{Ctx, Finding, Rule, Severity};
use crate::source::{SourceFile, Suppression};

pub struct UnsafeHygiene;

pub const MARKER: &str = "SAFETY";

impl Rule for UnsafeHygiene {
    fn id(&self) -> &'static str {
        "unsafe-hygiene"
    }

    fn describe(&self) -> &'static str {
        "crate/bin roots must `#![forbid(unsafe_code)]`; `unsafe` only in \
         `@bismo:allow-unsafe` files, each use under a `// SAFETY:` comment"
    }

    fn check(&self, sf: &SourceFile, _ctx: &Ctx, out: &mut Vec<Finding>) {
        let allow_unsafe = sf.has_marker("allow-unsafe");
        let toks = sf.tokens();

        if sf.kind.is_unsafe_gate_root() && !allow_unsafe && !has_forbid_unsafe(sf) {
            out.push(Finding {
                rule: self.id(),
                severity: Severity::Deny,
                path: sf.path.clone(),
                line: 1,
                col: 1,
                message: "crate/binary root is missing `#![forbid(unsafe_code)]` (add it, or \
                          tag the file `//! @bismo:allow-unsafe` for a sanctioned exception)"
                    .to_string(),
            });
        }

        for t in toks {
            if t.kind != TokKind::Ident || t.text(&sf.src) != "unsafe" {
                continue;
            }
            let (line, col) = sf.line_col(t.lo);
            if !allow_unsafe {
                out.push(Finding {
                    rule: self.id(),
                    severity: Severity::Deny,
                    path: sf.path.clone(),
                    line,
                    col,
                    message: "`unsafe` outside a `@bismo:allow-unsafe` file".to_string(),
                });
                continue;
            }
            // Sanctioned file: each use still needs its own SAFETY rationale.
            // (A SAFETY comment with an empty justification is Absent here on
            // purpose — `suppression` already distinguishes, but for unsafe we
            // demand the full form either way.)
            match sf.suppression(line, MARKER) {
                Suppression::Justified => {}
                _ => out.push(Finding {
                    rule: self.id(),
                    severity: Severity::Deny,
                    path: sf.path.clone(),
                    line,
                    col,
                    message: "`unsafe` without a `// SAFETY:` comment stating why the \
                              invariants hold"
                        .to_string(),
                }),
            }
        }
    }
}

/// Token-level scan for `#![forbid(unsafe_code)]` (tolerates other lints in
/// the same attribute, e.g. `#![forbid(unsafe_code, missing_docs)]`).
fn has_forbid_unsafe(sf: &SourceFile) -> bool {
    let toks = sf.tokens();
    toks.iter().enumerate().any(|(i, t)| {
        t.kind == TokKind::Ident
            && t.text(&sf.src) == "forbid"
            && toks.get(i + 1).is_some_and(|n| n.text(&sf.src) == "(")
            && toks[i..toks.len().min(i + 12)]
                .iter()
                .any(|n| n.kind == TokKind::Ident && n.text(&sf.src) == "unsafe_code")
    })
}
