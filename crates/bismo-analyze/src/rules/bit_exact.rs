//! Rule `bit-exact-purity` — DESIGN.md §10.
//!
//! Files tagged `//! @bismo:bit-exact` hold kernels whose exact f64 operation
//! DAG is pinned by the golden FNV-bit hashes: loop restructuring is allowed,
//! per-element numeric restructuring is not. This rule rejects the three
//! cheapest ways to silently fork that DAG:
//!
//! - `mul_add` — hardware FMA contracts the intermediate rounding step;
//! - `.sum()` / `.product()` on iterators — invites reassociation when the
//!   iterator or a future `Sum` impl changes the fold shape;
//! - `target_feature` (in `#[cfg(…)]`, `cfg!(…)`, or `#[target_feature]`) —
//!   a per-CPU branch makes the DAG depend on the build host.
//!
//! Individual sites are allowlisted with `// BIT-EXACT-OK: <why>`.

use crate::lexer::TokKind;
use crate::rules::{finding_unless_marked, Ctx, Finding, Rule};
use crate::source::SourceFile;

pub struct BitExactPurity;

pub const MARKER: &str = "BIT-EXACT-OK";

impl Rule for BitExactPurity {
    fn id(&self) -> &'static str {
        "bit-exact-purity"
    }

    fn describe(&self) -> &'static str {
        "files tagged `//! @bismo:bit-exact` may not use mul_add/FMA, iterator \
         sum()/product(), or target_feature branches (DESIGN.md §10)"
    }

    fn check(&self, sf: &SourceFile, _ctx: &Ctx, out: &mut Vec<Finding>) {
        if !sf.has_marker("bit-exact") {
            return;
        }
        let toks = sf.tokens();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || sf.in_test_code(t.lo) {
                continue;
            }
            match t.text(&sf.src) {
                "mul_add" => finding_unless_marked(
                    sf,
                    t.lo,
                    self.id(),
                    MARKER,
                    "`mul_add` in a bit-exact file: FMA contraction changes the rounded \
                     operation DAG the golden hashes pin"
                        .to_string(),
                    out,
                ),
                name @ ("sum" | "product") => {
                    // Only method-call position: `.sum()` / `.sum::<f64>()`.
                    let after_dot = i > 0
                        && toks[i - 1].kind == TokKind::Punct
                        && toks[i - 1].text(&sf.src) == ".";
                    let called = toks.get(i + 1).is_some_and(|n| {
                        n.kind == TokKind::Punct && matches!(n.text(&sf.src), "(" | "::")
                    });
                    if after_dot && called {
                        finding_unless_marked(
                            sf,
                            t.lo,
                            self.id(),
                            MARKER,
                            format!(
                                "iterator `.{name}()` in a bit-exact file: fold order is an \
                                 implementation detail — use an explicit accumulation loop or \
                                 justify the fixed order"
                            ),
                            out,
                        );
                    }
                }
                "target_feature" => finding_unless_marked(
                    sf,
                    t.lo,
                    self.id(),
                    MARKER,
                    "`target_feature` in a bit-exact file: per-CPU dispatch forks the \
                     operation DAG across build hosts"
                        .to_string(),
                    out,
                ),
                _ => {}
            }
        }
    }
}
