//! The rule catalog: each rule turns one DESIGN.md contract into findings.

use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::source::{SourceFile, Suppression};

mod bit_exact;
mod env_knob;
mod float_eq;
mod panic_surface;
mod unsafe_hygiene;

pub use bit_exact::BitExactPurity;
pub use env_knob::EnvKnobRegistry;
pub use float_eq::FloatEq;
pub use panic_surface::PanicSurface;
pub use unsafe_hygiene::UnsafeHygiene;

/// Finding severity. `Deny` findings fail the run under `--deny`; `Warn`
/// findings are advisory and never affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Deny,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    pub path: PathBuf,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

/// Workspace-level context shared by all rules.
pub struct Ctx {
    /// Knob names documented in the README's environment-knob table.
    pub readme_knobs: BTreeSet<String>,
}

impl Ctx {
    pub fn new(readme_knobs: BTreeSet<String>) -> Ctx {
        Ctx { readme_knobs }
    }
}

/// A static-analysis rule.
pub trait Rule {
    /// Stable identifier, used in reports and `--rule` filters.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Scan one file, appending findings.
    fn check(&self, sf: &SourceFile, ctx: &Ctx, out: &mut Vec<Finding>);
}

/// The full catalog, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(BitExactPurity),
        Box::new(PanicSurface),
        Box::new(UnsafeHygiene),
        Box::new(EnvKnobRegistry),
        Box::new(FloatEq),
    ]
}

/// Shared helper: emit a finding at `offset` unless a `marker` comment with a
/// non-empty justification covers its line. An empty justification becomes
/// its own finding so annotation rot is caught instead of honored.
pub(crate) fn finding_unless_marked(
    sf: &SourceFile,
    offset: usize,
    rule: &'static str,
    marker: &str,
    message: String,
    out: &mut Vec<Finding>,
) {
    let (line, col) = sf.line_col(offset);
    match sf.suppression(line, marker) {
        Suppression::Justified => {}
        Suppression::Absent => out.push(Finding {
            rule,
            severity: Severity::Deny,
            path: sf.path.clone(),
            line,
            col,
            message,
        }),
        Suppression::Empty => out.push(Finding {
            rule,
            severity: Severity::Deny,
            path: sf.path.clone(),
            line,
            col,
            message: format!(
                "`// {marker}:` marker has an empty justification — write the rationale \
                 (site: {message})"
            ),
        }),
    }
}
