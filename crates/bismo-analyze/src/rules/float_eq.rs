//! Rule `float-eq` — exact float comparison outside golden-bit code.
//!
//! `==`/`!=` on floats is almost always a sentinel check that deserves a
//! stated rationale (`defocus_nm == 0.0` meaning "the focused configuration,
//! exactly as constructed" is fine; a tolerance comparison spelled `==` is
//! not). Detection is lexical: a comparison with a float *literal* operand.
//! Ident-vs-ident float comparisons are invisible to a lexer and out of
//! scope — documented limitation, DESIGN.md §12.
//!
//! Exemptions: test code, files tagged `@bismo:bit-exact` (golden-bit code
//! compares exact values by design), and sites annotated
//! `// FLOAT-EQ-OK: <why exact equality is the right predicate>`.

use crate::lexer::TokKind;
use crate::rules::{finding_unless_marked, Ctx, Finding, Rule};
use crate::source::SourceFile;

pub struct FloatEq;

pub const MARKER: &str = "FLOAT-EQ-OK";

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }

    fn describe(&self) -> &'static str {
        "`==`/`!=` against a float literal outside tests/golden-bit code needs \
         `// FLOAT-EQ-OK:` (exact sentinel) or a tolerance comparison"
    }

    fn check(&self, sf: &SourceFile, _ctx: &Ctx, out: &mut Vec<Finding>) {
        if sf.kind.is_test() || sf.has_marker("bit-exact") {
            return;
        }
        let toks = sf.tokens();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Punct
                || !matches!(t.text(&sf.src), "==" | "!=")
                || sf.in_test_code(t.lo)
            {
                continue;
            }
            let float_operand = [i.checked_sub(1), Some(i + 1)]
                .into_iter()
                .flatten()
                .filter_map(|j| toks.get(j))
                .any(|n| n.kind == TokKind::Float);
            if float_operand {
                let op = t.text(&sf.src).to_string();
                finding_unless_marked(
                    sf,
                    t.lo,
                    self.id(),
                    MARKER,
                    format!(
                        "`{op}` against a float literal: state why exact equality is the \
                         right predicate, or compare with a tolerance"
                    ),
                    out,
                );
            }
        }
    }
}
