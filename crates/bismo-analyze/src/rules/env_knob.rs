//! Rule `env-knob-registry` — DESIGN.md §7's fail-fast knob contract.
//!
//! The pre-PR-3 `BISMO_SCALE=qiuck` bug class: an env knob read loosely and
//! silently defaulted. The contract since then is that every knob (a) is
//! named `BISMO_*`, (b) is parsed fail-fast (typos abort with the valid
//! values listed), and (c) appears in the README's environment-knob table.
//! This rule machine-checks (a) and (c), and keeps (b) honest at the call
//! site: an `env::var` read whose key is not a `BISMO_*` string literal
//! (e.g. a closure parameter forwarded to a strict parser) must carry
//! `// ENV-OK: <which knobs / which parser>`.
//!
//! Any full-match `"BISMO_<NAME>"` string literal anywhere in non-test code
//! is treated as a knob reference and checked against the README table — that
//! is what catches a typo'd knob name in a key list, not just at `env::var`.

use crate::lexer::TokKind;
use crate::rules::{finding_unless_marked, Ctx, Finding, Rule};
use crate::source::SourceFile;

pub struct EnvKnobRegistry;

pub const MARKER: &str = "ENV-OK";

/// `"BISMO_FOO"` (quotes stripped, full match) → `Some("BISMO_FOO")`.
fn knob_literal(text: &str) -> Option<&str> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    let rest = inner.strip_prefix("BISMO_")?;
    (!rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_'))
    .then_some(inner)
}

impl Rule for EnvKnobRegistry {
    fn id(&self) -> &'static str {
        "env-knob-registry"
    }

    fn describe(&self) -> &'static str {
        "every env::var read uses a `BISMO_*` literal (or `// ENV-OK:`) and every \
         knob literal appears in the README environment-knob table"
    }

    fn check(&self, sf: &SourceFile, ctx: &Ctx, out: &mut Vec<Finding>) {
        if sf.kind.is_test() {
            return;
        }
        let toks = sf.tokens();
        for (i, t) in toks.iter().enumerate() {
            if sf.in_test_code(t.lo) {
                continue;
            }
            // Knob-literal registry check, anywhere in non-test code.
            if t.kind == TokKind::Str {
                if let Some(knob) = knob_literal(t.text(&sf.src)) {
                    if !ctx.readme_knobs.contains(knob) {
                        let (line, col) = sf.line_col(t.lo);
                        out.push(Finding {
                            rule: self.id(),
                            severity: crate::rules::Severity::Deny,
                            path: sf.path.clone(),
                            line,
                            col,
                            message: format!(
                                "knob `{knob}` is not in the README environment-knob table — \
                                 document it there (or fix the typo in the name)"
                            ),
                        });
                    }
                }
                continue;
            }
            // `env :: var(…)` / `env :: var_os(…)` call sites.
            if t.kind == TokKind::Ident
                && t.text(&sf.src) == "env"
                && toks.get(i + 1).is_some_and(|n| n.text(&sf.src) == "::")
                && toks
                    .get(i + 2)
                    .is_some_and(|n| matches!(n.text(&sf.src), "var" | "var_os"))
                && toks.get(i + 3).is_some_and(|n| n.text(&sf.src) == "(")
            {
                let arg = toks.get(i + 4);
                let literal_knob = arg.and_then(|a| {
                    (a.kind == TokKind::Str)
                        .then(|| knob_literal(a.text(&sf.src)))
                        .flatten()
                });
                if literal_knob.is_none() {
                    finding_unless_marked(
                        sf,
                        t.lo,
                        self.id(),
                        MARKER,
                        "`env::var` read without a `BISMO_*` literal key: name the knob(s) \
                         and the fail-fast parser that consumes this read"
                            .to_string(),
                        out,
                    );
                }
            }
        }
    }
}
