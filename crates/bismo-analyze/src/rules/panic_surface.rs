//! Rule `panic-surface` — DESIGN.md §7's failure-isolation contract.
//!
//! The suite runner isolates per-item `LithoError`s as data; a stray
//! `unwrap()` in library code turns a recoverable item failure into a dead
//! worker. Every `unwrap()` / `expect(…)` / `panic!` / `unreachable!` /
//! `todo!` / `unimplemented!` in non-test **library** code must either be
//! converted to a structured error or carry `// PANIC-OK: <why this cannot
//! fire / why dying is correct>`.
//!
//! Scope: `FileKind::Lib` only. Binaries are CLI mains where panicking with a
//! message *is* the error path, and test code asserts by design.
//!
//! An advisory (never-deny) per-file count of `[idx]`-style index expressions
//! rides along: slice indexing is this codebase's hot-loop idiom and is
//! bounds-checked by construction almost everywhere, so per-site annotation
//! would be noise, but the aggregate is worth watching in review.

use crate::lexer::TokKind;
use crate::rules::{finding_unless_marked, Ctx, Finding, Rule, Severity};
use crate::source::SourceFile;

pub struct PanicSurface;

pub const MARKER: &str = "PANIC-OK";

impl Rule for PanicSurface {
    fn id(&self) -> &'static str {
        "panic-surface"
    }

    fn describe(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable! in non-test library code needs a \
         `// PANIC-OK:` justification (DESIGN.md §7); advisory index-site census"
    }

    fn check(&self, sf: &SourceFile, _ctx: &Ctx, out: &mut Vec<Finding>) {
        if !sf.kind.is_library() {
            return;
        }
        let toks = sf.tokens();
        let mut index_sites = 0usize;
        let mut first_index_line = 0usize;
        for (i, t) in toks.iter().enumerate() {
            if sf.in_test_code(t.lo) {
                continue;
            }
            if t.kind == TokKind::Ident {
                let next = toks.get(i + 1);
                let next_is = |p: &str| {
                    next.is_some_and(|n| n.kind == TokKind::Punct && n.text(&sf.src) == p)
                };
                match t.text(&sf.src) {
                    name @ ("unwrap" | "expect") if next_is("(") => finding_unless_marked(
                        sf,
                        t.lo,
                        self.id(),
                        MARKER,
                        format!(
                            "`{name}` in library code: return a structured error or justify \
                             why this cannot fire"
                        ),
                        out,
                    ),
                    name @ ("panic" | "unreachable" | "todo" | "unimplemented") if next_is("!") => {
                        finding_unless_marked(
                            sf,
                            t.lo,
                            self.id(),
                            MARKER,
                            format!(
                                "`{name}!` in library code: return a structured error or \
                                 justify why this cannot fire"
                            ),
                            out,
                        );
                    }
                    _ => {}
                }
                continue;
            }
            // Advisory census: `[` in expression position (previous token is
            // an identifier, `)`, or `]`; excludes attributes, types, and
            // literals like `vec![…]` / `&[…]`).
            if t.kind == TokKind::Punct && t.text(&sf.src) == "[" && i > 0 {
                let prev = &toks[i - 1];
                let expr_pos = matches!(prev.kind, TokKind::Ident)
                    || (prev.kind == TokKind::Punct && matches!(prev.text(&sf.src), ")" | "]"));
                if expr_pos {
                    index_sites += 1;
                    if first_index_line == 0 {
                        first_index_line = sf.line_of(t.lo);
                    }
                }
            }
        }
        if index_sites > 0 {
            out.push(Finding {
                rule: self.id(),
                severity: Severity::Warn,
                path: sf.path.clone(),
                line: first_index_line,
                col: 1,
                message: format!(
                    "advisory: {index_sites} `[idx]` index expression(s) in library code — \
                     each is a potential panic site; prefer `get`/iterators on fallible paths"
                ),
            });
        }
    }
}
