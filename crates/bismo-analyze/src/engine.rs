//! Workspace walk + rule application.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{all_rules, Ctx, Finding, Rule, Severity};
use crate::source::{classify, FileKind, SourceFile};

/// Result of an analysis run.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Analysis {
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }
}

/// Extract the knob registry from the README: every `BISMO_*` word between
/// the `## Environment knobs` heading and the next `## ` heading.
pub fn readme_knobs(readme: &str) -> BTreeSet<String> {
    let mut knobs = BTreeSet::new();
    let Some(start) = readme.find("## Environment knobs") else {
        return knobs;
    };
    let section = &readme[start..];
    let end = section[3..].find("\n## ").map_or(section.len(), |p| p + 3);
    let section = &section[..end];
    let bytes = section.as_bytes();
    let mut i = 0;
    while let Some(pos) = section[i..].find("BISMO_") {
        let lo = i + pos;
        let mut hi = lo + "BISMO_".len();
        while hi < bytes.len()
            && (bytes[hi].is_ascii_uppercase() || bytes[hi].is_ascii_digit() || bytes[hi] == b'_')
        {
            hi += 1;
        }
        if hi > lo + "BISMO_".len() {
            knobs.insert(section[lo..hi].to_string());
        }
        i = hi;
    }
    knobs
}

/// Build the workspace context by reading `<root>/README.md` (missing README
/// means an empty knob registry — every knob reference then fails, which is
/// the right failure direction for a registry).
pub fn load_ctx(root: &Path) -> Ctx {
    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    Ctx::new(readme_knobs(&readme))
}

/// Recursively collect `.rs` files under `root`, sorted for deterministic
/// reports, with their classification. Unscannable kinds are dropped here.
fn collect_files(root: &Path) -> io::Result<Vec<(PathBuf, FileKind)>> {
    let mut stack = vec![root.to_path_buf()];
    let mut out = Vec::new();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .collect();
        entries.sort_by_key(std::fs::DirEntry::file_name);
        for e in entries {
            let path = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path);
                if let Some(kind) = classify(rel) {
                    out.push((path, kind));
                }
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Run `rules` over one file.
pub fn analyze_file(
    path: &Path,
    kind: FileKind,
    ctx: &Ctx,
    rules: &[Box<dyn Rule>],
) -> io::Result<Vec<Finding>> {
    let src = fs::read_to_string(path)?;
    let sf = SourceFile::new(path.to_path_buf(), kind, src);
    let mut out = Vec::new();
    for rule in rules {
        rule.check(&sf, ctx, &mut out);
    }
    Ok(out)
}

/// Analyze the whole workspace rooted at `root` with the full catalog.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    analyze_workspace_filtered(root, &all_rules())
}

/// Analyze the whole workspace with a caller-chosen rule set.
pub fn analyze_workspace_filtered(root: &Path, rules: &[Box<dyn Rule>]) -> io::Result<Analysis> {
    let ctx = load_ctx(root);
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    for (path, kind) in &files {
        findings.extend(analyze_file(path, *kind, &ctx, rules)?);
    }
    // Report paths relative to the root so output is stable across checkouts.
    for f in &mut findings {
        if let Ok(rel) = f.path.strip_prefix(root) {
            f.path = rel.to_path_buf();
        }
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(Analysis {
        findings,
        files_scanned: files.len(),
    })
}
