//! CLI for the invariant linter. `cargo run -p bismo-analyze -- --deny`
//! analyzes the workspace; `--path FILE --kind lib` analyzes single files
//! (used by the rule-fixture tests).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bismo_analyze::engine::{analyze_file, analyze_workspace_filtered, load_ctx, Analysis};
use bismo_analyze::report::{render_json, render_text};
use bismo_analyze::rules::{all_rules, Rule};
use bismo_analyze::source::FileKind;

const USAGE: &str = "\
bismo-analyze — in-tree invariant linter (DESIGN.md §12)

USAGE:
  cargo run -p bismo-analyze -- [OPTIONS]

OPTIONS:
  --deny            exit nonzero (code 2) when any deny-severity finding exists
  --root DIR        workspace root to analyze (default: .)
  --path FILE       analyze one file instead of the workspace (repeatable)
  --kind KIND       classification for --path files: lib | lib-root | bin | test
                    (default: lib)
  --rule ID         run only this rule (repeatable; default: all)
  --format FMT      stdout format: text | json (default: text)
  --out FILE        additionally write the JSON report to FILE
  --list-rules      print the rule catalog and exit
  -h, --help        this help
";

struct Opts {
    deny: bool,
    root: PathBuf,
    paths: Vec<PathBuf>,
    kind: FileKind,
    rule_filter: Vec<String>,
    format_json: bool,
    out: Option<PathBuf>,
    list_rules: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        deny: false,
        root: PathBuf::from("."),
        paths: Vec::new(),
        kind: FileKind::Lib { crate_root: false },
        rule_filter: Vec::new(),
        format_json: false,
        out: None,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--deny" => o.deny = true,
            "--root" => o.root = PathBuf::from(value("--root")?),
            "--path" => o.paths.push(PathBuf::from(value("--path")?)),
            "--kind" => {
                let v = value("--kind")?;
                o.kind = FileKind::parse(&v)
                    .ok_or_else(|| format!("unknown --kind `{v}` (lib|lib-root|bin|test)"))?;
            }
            "--rule" => o.rule_filter.push(value("--rule")?),
            "--format" => match value("--format")?.as_str() {
                "text" => o.format_json = false,
                "json" => o.format_json = true,
                v => return Err(format!("unknown --format `{v}` (text|json)")),
            },
            "--out" => o.out = Some(PathBuf::from(value("--out")?)),
            "--list-rules" => o.list_rules = true,
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(o)
}

fn selected_rules(filter: &[String]) -> Result<Vec<Box<dyn Rule>>, String> {
    let rules = all_rules();
    if filter.is_empty() {
        return Ok(rules);
    }
    let known: Vec<&str> = rules.iter().map(|r| r.id()).collect();
    for f in filter {
        if !known.contains(&f.as_str()) {
            return Err(format!("unknown rule `{f}` (known: {})", known.join(", ")));
        }
    }
    Ok(rules
        .into_iter()
        .filter(|r| filter.iter().any(|f| f == r.id()))
        .collect())
}

fn run(opts: &Opts) -> Result<Analysis, String> {
    let rules = selected_rules(&opts.rule_filter)?;
    if opts.paths.is_empty() {
        return analyze_workspace_filtered(&opts.root, &rules)
            .map_err(|e| format!("analyzing {}: {e}", opts.root.display()));
    }
    // Single-file mode: knob registry still comes from <root>/README.md.
    let ctx = load_ctx(&opts.root);
    let mut findings = Vec::new();
    for p in &opts.paths {
        findings.extend(
            analyze_file(p, opts.kind, &ctx, &rules)
                .map_err(|e| format!("analyzing {}: {e}", p.display()))?,
        );
    }
    Ok(Analysis {
        findings,
        files_scanned: opts.paths.len(),
    })
}

fn write_out(path: &Path, json: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    if opts.list_rules {
        for r in all_rules() {
            println!("{:<20} {}", r.id(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    let analysis = match run(&opts) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bismo-analyze: {msg}");
            return ExitCode::from(1);
        }
    };
    let json = render_json(&analysis);
    if opts.format_json {
        print!("{json}");
    } else {
        print!("{}", render_text(&analysis));
    }
    if let Some(out) = &opts.out {
        if let Err(msg) = write_out(out, &json) {
            eprintln!("bismo-analyze: {msg}");
            return ExitCode::from(1);
        }
    }
    if opts.deny && analysis.deny_count() > 0 {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
