//! `bismo-analyze` — the in-tree invariant linter (DESIGN.md §12).
//!
//! Turns the repo's hand-maintained correctness contracts into deny-by-default
//! machine checks that run on every push, without building the workspace:
//!
//! | rule | contract |
//! |---|---|
//! | `bit-exact-purity` | no FMA / iterator folds / CPU branches in `@bismo:bit-exact` files (§10) |
//! | `panic-surface` | library panics need `// PANIC-OK:` or a structured error (§7) |
//! | `unsafe-hygiene` | roots `#![forbid(unsafe_code)]`; sanctioned `unsafe` under `// SAFETY:` |
//! | `env-knob-registry` | `BISMO_*` knobs are literal, fail-fast parsed, and in the README table (§7) |
//! | `float-eq` | exact float comparison needs `// FLOAT-EQ-OK:` outside golden-bit code |
//!
//! The pass is registry-free (no `syn` offline): a hand-rolled lexer
//! ([`lexer`]) feeds a small rule engine with spans, severities, and
//! marker-comment allowlists. Run it as
//! `cargo run -p bismo-analyze -- --deny`.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{analyze_file, analyze_workspace, load_ctx, readme_knobs, Analysis};
pub use rules::{all_rules, Ctx, Finding, Rule, Severity};
pub use source::{classify, FileKind, SourceFile};
