//! A hand-rolled Rust lexer, sufficient for invariant linting.
//!
//! `syn`/`proc-macro2` are unavailable offline, and the rules in this crate
//! only need token identity and position — never a full parse tree. The lexer
//! produces two streams over the raw source text: code tokens (identifiers,
//! literals, punctuation, with byte spans) and comments (kept separately so
//! rules can look up marker comments like `// PANIC-OK:` by line). It
//! understands the full literal grammar that matters for not mis-lexing real
//! code: nested block comments, raw strings with any number of `#`s, byte and
//! byte-string literals, char literals vs. lifetimes, numeric literals with
//! underscores / exponents / type suffixes, and raw identifiers.

/// Kind of a code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Integer literal (including its suffix, e.g. `10usize`).
    Int,
    /// Float literal (has a fraction, an exponent, or an `f32`/`f64` suffix).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation, maximal-munch over Rust's compound operators.
    Punct,
}

/// A code token: kind plus byte span into the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    pub lo: usize,
    pub hi: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }
}

/// A comment, kept out of the code-token stream.
#[derive(Debug, Clone, Copy)]
pub struct Comment {
    pub lo: usize,
    pub hi: usize,
    /// `/* … */` rather than `// …`.
    pub block: bool,
    /// Inner doc comment (`//!` / `/*!`) — where file markers live.
    pub inner_doc: bool,
}

impl Comment {
    /// The comment's text within `src`, including delimiters.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Compound operators, longest first so maximal munch is a prefix scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex `src` into tokens and comments. Never fails: unterminated constructs
/// extend to end-of-file, and unknown bytes become single-char puncts, so the
/// analyzer degrades gracefully on malformed input instead of crashing.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0;
    while i < n {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n && (b[i + 1] == b'/' || b[i + 1] == b'*') {
            let lo = i;
            if b[i + 1] == b'/' {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                let inner_doc = src[lo..i].starts_with("//!");
                out.comments.push(Comment {
                    lo,
                    hi: i,
                    block: false,
                    inner_doc,
                });
            } else {
                let inner_doc = src[lo..].starts_with("/*!");
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    lo,
                    hi: i,
                    block: true,
                    inner_doc,
                });
            }
            continue;
        }
        // Raw identifiers and r/b-prefixed strings.
        if c == b'r' || c == b'b' {
            if let Some(tok) = lex_prefixed(src, i) {
                i = tok.hi;
                out.tokens.push(tok);
                continue;
            }
        }
        if c == b'"' {
            let hi = scan_string(b, i + 1, 0);
            out.tokens.push(Token {
                kind: TokKind::Str,
                lo: i,
                hi,
            });
            i = hi;
            continue;
        }
        if c == b'\'' {
            let tok = lex_quote(b, i);
            i = tok.hi;
            out.tokens.push(tok);
            continue;
        }
        if is_ident_start(c) {
            let lo = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                lo,
                hi: i,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let tok = lex_number(b, i);
            i = tok.hi;
            out.tokens.push(tok);
            continue;
        }
        // Punctuation: maximal munch over the compound table.
        let rest = &src[i..];
        let len = PUNCTS.iter().find(|p| rest.starts_with(**p)).map_or_else(
            || {
                // Fall back to one full (possibly multi-byte) char.
                rest.chars().next().map_or(1, char::len_utf8)
            },
            |p| p.len(),
        );
        out.tokens.push(Token {
            kind: TokKind::Punct,
            lo: i,
            hi: i + len,
        });
        i += len;
    }
    out
}

/// Scan a string body starting just after the opening quote; `hashes` is the
/// number of `#`s a raw string closes with (0 = escaped string).
fn scan_string(b: &[u8], mut i: usize, hashes: usize) -> usize {
    let n = b.len();
    while i < n {
        if hashes == 0 && b[i] == b'\\' {
            i = (i + 2).min(n);
            continue;
        }
        if b[i] == b'"' {
            if hashes == 0 {
                return i + 1;
            }
            let mut k = 0;
            while k < hashes && i + 1 + k < n && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// Try to lex `r#ident`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'`
/// starting at `i` (which holds `r` or `b`). Returns `None` when the prefix
/// is just the start of a plain identifier.
fn lex_prefixed(src: &str, i: usize) -> Option<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut j = i + 1;
    if j < n && b[i] == b'b' && b[j] == b'r' {
        j += 1; // `br…`
    }
    // Count raw-string hashes.
    let mut hashes = 0;
    while j < n && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < n && b[j] == b'"' {
        // Plain `b"…"` has zero hashes but is not raw; it still never treats
        // `"#` as a closer, so reusing hashes==0 escape handling is correct.
        let raw = b[i] == b'r' || (j >= i + 2 && b[i + 1] == b'r');
        let hi = scan_string(b, j + 1, if raw { hashes } else { 0 });
        return Some(Token {
            kind: TokKind::Str,
            lo: i,
            hi,
        });
    }
    if hashes == 1 && j < n && b[i] == b'r' && is_ident_start(b[j]) {
        // Raw identifier `r#loop`.
        let mut k = j;
        while k < n && is_ident_continue(b[k]) {
            k += 1;
        }
        return Some(Token {
            kind: TokKind::Ident,
            lo: i,
            hi: k,
        });
    }
    if b[i] == b'b' && i + 1 < n && b[i + 1] == b'\'' {
        let inner = lex_quote(b, i + 1);
        return Some(Token {
            kind: TokKind::Char,
            lo: i,
            hi: inner.hi,
        });
    }
    None
}

/// Lex at a `'`: char literal or lifetime.
fn lex_quote(b: &[u8], i: usize) -> Token {
    let n = b.len();
    let lo = i;
    let mut j = i + 1;
    if j < n && b[j] == b'\\' {
        // Escaped char literal: skip escape, then find closing quote.
        j += 2;
        while j < n && b[j] != b'\'' {
            j += 1;
        }
        return Token {
            kind: TokKind::Char,
            lo,
            hi: (j + 1).min(n),
        };
    }
    if j < n && is_ident_start(b[j]) {
        let mut k = j;
        while k < n && is_ident_continue(b[k]) {
            k += 1;
        }
        if k < n && b[k] == b'\'' && k == j + 1 {
            // 'x' — single ident char then closing quote.
            return Token {
                kind: TokKind::Char,
                lo,
                hi: k + 1,
            };
        }
        if k < n && b[k] == b'\'' && k > j + 1 {
            // Multi-char like 'ab' is not valid Rust; treat as char to stay
            // out of the way.
            return Token {
                kind: TokKind::Char,
                lo,
                hi: k + 1,
            };
        }
        return Token {
            kind: TokKind::Lifetime,
            lo,
            hi: k,
        };
    }
    if j < n && b[j] != b'\'' {
        // Something like '(' — a one-char literal.
        let hi = if j + 1 < n && b[j + 1] == b'\'' {
            j + 2
        } else {
            j + 1
        };
        return Token {
            kind: TokKind::Char,
            lo,
            hi,
        };
    }
    Token {
        kind: TokKind::Char,
        lo,
        hi: (j + 1).min(n),
    }
}

/// Lex a numeric literal starting at a digit.
fn lex_number(b: &[u8], i: usize) -> Token {
    let n = b.len();
    let lo = i;
    let mut j = i;
    let mut float = false;
    if b[j] == b'0' && j + 1 < n && matches!(b[j + 1], b'x' | b'o' | b'b') {
        j += 2;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return Token {
            kind: TokKind::Int,
            lo,
            hi: j,
        };
    }
    while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fraction: `1.0`, or trailing `1.` (but not `1..2` ranges or `1.meth()`).
    if j < n && b[j] == b'.' {
        let next = b.get(j + 1).copied();
        let range_or_field =
            next == Some(b'.') || next.is_some_and(is_ident_start) || next.is_none();
        if !range_or_field {
            float = true;
            j += 1;
            while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < n && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < n && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < n && b[k].is_ascii_digit() {
            float = true;
            j = k;
            while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (`usize`, `f64`, …).
    let suffix_lo = j;
    while j < n && is_ident_continue(b[j]) {
        j += 1;
    }
    if b[suffix_lo..j].starts_with(b"f32") || b[suffix_lo..j].starts_with(b"f64") {
        float = true;
    }
    Token {
        kind: if float { TokKind::Float } else { TokKind::Int },
        lo,
        hi: j,
    }
}
