//! Per-file analysis context: lexed tokens, line index, test-code spans,
//! file markers, and marker-comment suppression lookup.

use std::path::{Path, PathBuf};

use crate::lexer::{self, Comment, Lexed, TokKind, Token};

/// How a file participates in the rule catalog. Classification is by path
/// (see [`classify`]); rules scope themselves to kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/`. `crate_root` is true for `src/lib.rs`.
    Lib { crate_root: bool },
    /// Binary code (`src/main.rs`, `src/bin/*.rs`). Every bin file is its own
    /// root for the purposes of the `#![forbid(unsafe_code)]` check.
    Bin,
    /// Test, bench, example, or test-infrastructure code: panic freely.
    Test,
}

impl FileKind {
    pub fn is_library(self) -> bool {
        matches!(self, FileKind::Lib { .. })
    }

    /// Files whose root must carry `#![forbid(unsafe_code)]`.
    pub fn is_unsafe_gate_root(self) -> bool {
        matches!(self, FileKind::Lib { crate_root: true } | FileKind::Bin)
    }

    pub fn is_test(self) -> bool {
        matches!(self, FileKind::Test)
    }

    /// Parse a CLI `--kind` value.
    pub fn parse(s: &str) -> Option<FileKind> {
        match s {
            "lib" => Some(FileKind::Lib { crate_root: false }),
            "lib-root" => Some(FileKind::Lib { crate_root: true }),
            "bin" => Some(FileKind::Bin),
            "test" => Some(FileKind::Test),
            _ => None,
        }
    }
}

/// Classify a path relative to the workspace root. Returns `None` for files
/// the analyzer must not scan (the analyzer's own rule fixtures, which are
/// deliberate violations, and anything under `target/`).
pub fn classify(rel: &Path) -> Option<FileKind> {
    let segs: Vec<&str> = rel.iter().filter_map(|s| s.to_str()).collect();
    if segs.iter().any(|s| *s == "target" || *s == ".git") {
        return None;
    }
    // The analyzer's rule fixtures are intentional violations.
    if segs.windows(2).any(|w| w == ["tests", "fixtures"]) {
        return None;
    }
    if segs
        .iter()
        .any(|s| *s == "tests" || *s == "benches" || *s == "examples")
    {
        return Some(FileKind::Test);
    }
    // bismo-testkit is test infrastructure: its assertion helpers exist to
    // panic, so the panic-surface rule treats the whole crate as test code.
    if segs.contains(&"bismo-testkit") {
        return Some(FileKind::Test);
    }
    let file = *segs.last()?;
    if file == "main.rs" || segs.windows(2).any(|w| w == ["src", "bin"]) {
        return Some(FileKind::Bin);
    }
    if file == "lib.rs" && segs.len() >= 2 && segs[segs.len() - 2] == "src" {
        return Some(FileKind::Lib { crate_root: true });
    }
    Some(FileKind::Lib { crate_root: false })
}

/// Result of looking up a suppression marker for a finding site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suppression {
    /// No marker near the site.
    Absent,
    /// Marker present with a non-empty justification: finding suppressed.
    Justified,
    /// Marker present but the justification text is empty. The site stays a
    /// finding — an empty rationale is the annotation equivalent of a typo'd
    /// env knob, and silently honoring it would rot the annotation layer.
    Empty,
}

/// A lexed source file plus everything the rules need to scope and suppress.
pub struct SourceFile {
    pub path: PathBuf,
    pub kind: FileKind,
    pub src: String,
    pub lexed: Lexed,
    line_starts: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(usize, usize)>,
    /// `@bismo:<tag>` file markers from inner doc comments.
    markers: Vec<String>,
}

impl SourceFile {
    pub fn new(path: PathBuf, kind: FileKind, src: String) -> SourceFile {
        let lexed = lexer::lex(&src);
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_test_spans(&src, &lexed.tokens);
        let markers = find_markers(&src, &lexed.comments);
        SourceFile {
            path,
            kind,
            src,
            lexed,
            line_starts,
            test_spans,
            markers,
        }
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self.line_starts.partition_point(|&s| s <= offset);
        let col = offset - self.line_starts[line - 1] + 1;
        (line, col)
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_col(offset).0
    }

    /// Whether a byte offset falls inside `#[cfg(test)]` / `#[test]` code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.kind.is_test()
            || self
                .test_spans
                .iter()
                .any(|&(lo, hi)| offset >= lo && offset < hi)
    }

    /// Whether the file carries an `//! @bismo:<tag>` marker.
    pub fn has_marker(&self, tag: &str) -> bool {
        self.markers.iter().any(|m| m == tag)
    }

    /// Look for a `// <MARKER>: justification` comment on the finding's line
    /// or up to two lines above it (covering trailing comments, own-line
    /// comments, and a short preceding block).
    pub fn suppression(&self, line: usize, marker: &str) -> Suppression {
        let lo_line = line.saturating_sub(2);
        let mut state = Suppression::Absent;
        for c in &self.lexed.comments {
            let cline = self.line_of(c.lo);
            if cline < lo_line || cline > line {
                continue;
            }
            let text = c.text(&self.src);
            if let Some(pos) = text.find(marker) {
                let rest = &text[pos + marker.len()..];
                let Some(just) = rest.strip_prefix(':') else {
                    continue;
                };
                let just = just.trim_end_matches("*/").trim();
                if just.is_empty() {
                    state = Suppression::Empty;
                } else {
                    return Suppression::Justified;
                }
            }
        }
        state
    }

    /// Tokens of the file (shorthand).
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Comments of the file (shorthand).
    pub fn comments(&self) -> &[Comment] {
        &self.lexed.comments
    }
}

/// Extract `@bismo:<tag>` markers from comments. Only inner doc comments
/// (`//!`, `/*!`) count: the marker describes the file, and accepting it from
/// arbitrary comments would let a stray mention re-scope the rules.
fn find_markers(src: &str, comments: &[Comment]) -> Vec<String> {
    let mut out = Vec::new();
    for c in comments {
        if !c.inner_doc {
            continue;
        }
        let mut text = c.text(src);
        while let Some(pos) = text.find("@bismo:") {
            let rest = &text[pos + "@bismo:".len()..];
            let end = rest
                .char_indices()
                .find(|&(_, ch)| !(ch.is_ascii_alphanumeric() || ch == '-'))
                .map_or(rest.len(), |(i, _)| i);
            if end > 0 {
                out.push(rest[..end].to_string());
            }
            text = &rest[end..];
        }
    }
    out
}

/// Find byte spans of items annotated `#[cfg(test)]` (including
/// `#[cfg(any(test, …))]`) or `#[test]`. The span runs from the attribute to
/// the end of the annotated item (matching close brace, or `;` for itemless
/// forms like `mod tests;`).
fn find_test_spans(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Punct && tokens[i].text(src) == "#") {
            i += 1;
            continue;
        }
        let Some((group_end, is_test)) = attr_group(src, tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = group_end;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = group_end;
        while j < tokens.len() && tokens[j].kind == TokKind::Punct && tokens[j].text(src) == "#" {
            match attr_group(src, tokens, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        // Scan the item: ends at the close of the first top-level brace
        // group, or at a top-level `;` before any brace.
        let mut depth = 0i32;
        let mut end = None;
        let mut saw_brace = false;
        for (k, t) in tokens.iter().enumerate().skip(j) {
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text(src) {
                "{" => {
                    depth += 1;
                    saw_brace = true;
                }
                "}" => {
                    depth -= 1;
                    if saw_brace && depth == 0 {
                        end = Some(tokens[k].hi);
                        break;
                    }
                }
                ";" if depth == 0 && !saw_brace => {
                    end = Some(tokens[k].hi);
                    break;
                }
                _ => {}
            }
        }
        let end = end.unwrap_or(src.len());
        spans.push((tokens[i].lo, end));
        // Continue after the item so nested `#[cfg(test)]` inside it (already
        // covered) is not re-scanned.
        while i < tokens.len() && tokens[i].lo < end {
            i += 1;
        }
    }
    spans
}

/// Parse an attribute starting at token `i` (which is `#`). Returns the index
/// just past the closing `]` and whether the attribute marks test code.
fn attr_group(src: &str, tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    // Optional `!` of an inner attribute.
    if j < tokens.len() && tokens[j].kind == TokKind::Punct && tokens[j].text(src) == "!" {
        j += 1;
    }
    if !(j < tokens.len() && tokens[j].kind == TokKind::Punct && tokens[j].text(src) == "[") {
        return None;
    }
    let open = j;
    let mut depth = 0i32;
    let mut close = None;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    close = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let inner = &tokens[open + 1..close];
    let first_ident = inner.iter().find(|t| t.kind == TokKind::Ident);
    let is_test = match first_ident.map(|t| t.text(src)) {
        // `#[cfg(test)]` or `#[cfg(any(test, …))]` — any `test` ident inside.
        Some("cfg") => inner
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "test"),
        // `#[test]` itself.
        Some("test") => true,
        _ => false,
    };
    Some((close + 1, is_test))
}
